"""Quickstart: generate a GenBase dataset and run one query on two engines.

Run with::

    python examples/quickstart.py

It generates the ``small`` dataset, runs the covariance query (Q2) on the
array DBMS (SciDB analog) and on the Hadoop analog, and prints the elapsed
time split into data management and analytics — the benchmark's central
measurement.
"""

from __future__ import annotations

from repro import BenchmarkRunner, GenBaseDataset


def main() -> None:
    dataset = GenBaseDataset.generate("small", seed=7)
    print("Dataset:", dataset.describe())

    runner = BenchmarkRunner(timeout_seconds=120)
    for engine in ("scidb", "hadoop"):
        result = runner.run("covariance", engine, dataset)
        print(
            f"\n{engine:8s} status={result.status.value}"
            f"  data management={result.data_management_seconds:.3f}s"
            f"  analytics={result.analytics_seconds:.3f}s"
            f"  total={result.total_seconds:.3f}s"
        )
        if result.output is not None:
            print(f"         answer summary: {result.output.summary}")


if __name__ == "__main__":
    main()
