"""Multi-node scaling study: how the Figure 3 behaviour arises.

Runs the SVD query (Q4) on three multi-node configurations — pbdR, SciDB and
Hadoop — at 1, 2 and 4 simulated nodes, and prints the simulated parallel
elapsed time plus the bytes moved over the interconnect.  The expected shape
mirrors the paper: speedup is sub-linear everywhere, pbdR scales best, SciDB
pays a redistribution penalty going from one node to two, and Hadoop barely
benefits at all.

Run with::

    python examples/cluster_scaling.py
"""

from __future__ import annotations

from repro.core import BenchmarkRunner
from repro.core.engines import make_engine
from repro.datagen import GenBaseDataset


def main() -> None:
    dataset = GenBaseDataset.generate("small", seed=3)
    runner = BenchmarkRunner(timeout_seconds=300)

    print(f"SVD query on the {dataset.spec.name} dataset "
          f"({dataset.n_patients} patients x {dataset.n_genes} genes)\n")
    header = f"{'engine':20s} {'nodes':>5s} {'dm (s)':>9s} {'analytics (s)':>14s} {'network bytes':>14s}"
    print(header)
    print("-" * len(header))

    for engine_name in ("pbdr", "scidb-cluster", "hadoop-cluster"):
        for n_nodes in (1, 2, 4):
            engine = make_engine(engine_name, n_nodes=n_nodes)
            engine.load(dataset)
            result = runner.run("svd", engine, dataset)
            network_bytes = engine.cluster.network.total_bytes
            print(f"{engine_name:20s} {n_nodes:5d} "
                  f"{result.data_management_seconds:9.3f} "
                  f"{result.analytics_seconds:14.3f} "
                  f"{network_bytes:14d}")
        print()


if __name__ == "__main__":
    main()
