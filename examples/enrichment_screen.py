"""GO-term enrichment screen: the paper's Query 5 workflow as a screening tool.

Runs the statistics (Wilcoxon enrichment) query on the vanilla-R engine and
on the array DBMS, checks that both recover the GO terms the generator
planted as enriched, and prints the per-term p-values — the output a
biologist would actually read.

Run with::

    python examples/enrichment_screen.py
"""

from __future__ import annotations

from repro.core import BenchmarkRunner
from repro.datagen import GenBaseDataset


def main() -> None:
    dataset = GenBaseDataset.generate("small", seed=21)
    planted = set(int(term) for term in dataset.ontology.enriched_terms)
    print(f"Generator planted {len(planted)} enriched GO terms: {sorted(planted)}")

    runner = BenchmarkRunner()
    for engine in ("vanilla-r", "scidb"):
        result = runner.run("statistics", engine, dataset)
        enrichment = result.output.payload
        if isinstance(enrichment, dict):
            enrichment = enrichment.get("result")
        significant = set(int(term) for term in enrichment.significant_terms())
        recovered = planted & significant
        print(f"\n{engine}: {result.output.summary['n_significant']} significant terms "
              f"(alpha={enrichment.alpha}), "
              f"{len(recovered)}/{len(planted)} planted terms recovered "
              f"in {result.total_seconds:.3f}s")
        rows = sorted(enrichment.as_rows(), key=lambda row: row[1])[:5]
        print("  top terms (go_id, p-value, z-score):")
        for go_id, p_value, z_score, _significant in rows:
            print(f"    GO:{go_id:04d}  p={p_value:.2e}  z={z_score:+.2f}")


if __name__ == "__main__":
    main()
