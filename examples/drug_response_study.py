"""Drug-response study: the paper's Query 1 workflow end to end.

A bioinformatician wants to predict patient drug response from gene
expression (the motivating use case of GenBase Query 1).  This example runs
the complete workflow on the row-store engine and then validates the fitted
model against the generator's planted ground truth:

1. select genes with a particular set of functions,
2. join them with the microarray table and project the expression values,
3. restructure the result as a patients × genes matrix,
4. fit a QR-decomposition linear regression of drug response on expression,
5. report R² and the most predictive genes.

Run with::

    python examples/drug_response_study.py
"""

from __future__ import annotations

import numpy as np

from repro.core import BenchmarkRunner
from repro.core.spec import default_parameters
from repro.datagen import GenBaseDataset


def main() -> None:
    dataset = GenBaseDataset.generate("small", seed=13)
    parameters = default_parameters(dataset.spec)
    threshold = parameters.function_threshold(dataset.spec)
    print(f"Selecting genes with function < {threshold} "
          f"({dataset.spec.n_functions} function codes in total)")

    runner = BenchmarkRunner()
    result = runner.run("regression", "postgres-madlib", dataset, parameters=parameters)
    fit = result.output.payload

    print(f"\nEngine: postgres-madlib  status={result.status.value}")
    print(f"  data management: {result.data_management_seconds:.3f}s")
    print(f"  analytics:       {result.analytics_seconds:.3f}s")
    print(f"  model R^2:       {fit.r_squared:.3f} over "
          f"{result.output.summary['n_selected_genes']} genes")

    # Compare the most predictive genes against the planted causal genes.
    # Only causal genes that survived the function filter can possibly appear
    # in the model, so the recovery rate is reported over that subset.
    selected = np.flatnonzero(dataset.genes.function < threshold)
    importance = np.abs(fit.coefficients)
    top = selected[np.argsort(importance)[::-1][:10]]
    planted = set(dataset.microarray.structure.causal_genes.tolist())
    selectable = planted & set(selected.tolist())
    overlap = sum(1 for gene in top if int(gene) in planted)
    print(f"\nTop 10 model genes: {sorted(int(g) for g in top)}")
    if selectable:
        print(f"Planted causal genes that passed the function filter: {sorted(selectable)}")
        print(f"Of those, recovered among the top model genes: {overlap}")
    else:
        print("No planted causal gene passed the function filter for this seed; "
              "the model explains drug response through genes correlated with them "
              f"(R^2 stays at {fit.r_squared:.2f}).")
    print(f"Drug response for a new patient profile: "
          f"{fit.predict(dataset.expression_matrix[:1, selected])[0]:.3f}")


if __name__ == "__main__":
    main()
