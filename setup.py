"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` also works on older setuptools/pip stacks (and in
offline environments without the ``wheel`` package, where the legacy
``setup.py develop`` editable path is the only one available).
"""

from setuptools import setup

setup()
