"""Property-based tests (hypothesis) for the core data structures and kernels."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.colstore.column import ColumnVector
from repro.colstore.compression import (
    DeltaEncoding,
    DictionaryEncoding,
    PlainEncoding,
    RunLengthEncoding,
    best_encoding,
    encoding_sizes,
)
from repro.colstore.query import ColumnQuery
from repro.colstore.table import ColumnTable
from repro.datagen.writer import matrix_from_csv_string, matrix_to_csv_string
from repro.linalg.covariance import covariance_matrix
from repro.linalg.qr import householder_qr, linear_regression, lstsq_qr
from repro.linalg.lanczos import lanczos_svd
from repro.linalg.wilcoxon import _rank_with_ties, rank_sum_test
from repro.mapreduce.engine import MapReduceEngine, MapReduceJob
from repro.relational import ColumnType
from repro.relational.schema import Schema
from repro.relational.storage import HeapFile

# ---------------------------------------------------------------------------- #
# Strategies
# ---------------------------------------------------------------------------- #

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False, width=64
)


def matrices(min_rows=2, max_rows=12, min_cols=1, max_cols=8):
    return hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(
            st.integers(min_rows, max_rows), st.integers(min_cols, max_cols)
        ),
        elements=finite_floats,
    )


int_arrays = hnp.arrays(
    dtype=np.int64,
    shape=st.integers(0, 200),
    elements=st.integers(-1000, 1000),
)


# ---------------------------------------------------------------------------- #
# Column encodings
# ---------------------------------------------------------------------------- #

class TestEncodingProperties:
    @given(int_arrays)
    @settings(max_examples=60, deadline=None)
    def test_rle_roundtrip(self, values):
        encoding = RunLengthEncoding()
        encoding.encode(values)
        np.testing.assert_array_equal(encoding.decode(), values)

    @given(int_arrays)
    @settings(max_examples=60, deadline=None)
    def test_dictionary_roundtrip(self, values):
        encoding = DictionaryEncoding()
        encoding.encode(values)
        np.testing.assert_array_equal(encoding.decode(), values)

    @given(int_arrays)
    @settings(max_examples=60, deadline=None)
    def test_delta_roundtrip(self, values):
        encoding = DeltaEncoding()
        encoding.encode(values)
        np.testing.assert_array_equal(encoding.decode(), values)

    @given(hnp.arrays(dtype=np.float64, shape=st.integers(0, 200), elements=finite_floats))
    @settings(max_examples=60, deadline=None)
    def test_best_encoding_roundtrip_floats(self, values):
        encoding = best_encoding(values)
        np.testing.assert_array_equal(encoding.decode(), values)


# ---------------------------------------------------------------------------- #
# Compressed execution: encoded fast paths must match the plain-decode answers
# ---------------------------------------------------------------------------- #

ALL_ENCODINGS = (PlainEncoding, RunLengthEncoding, DictionaryEncoding, DeltaEncoding)

# Includes all-ties (constant) columns explicitly: one value repeated.
encodable_int_arrays = st.one_of(
    int_arrays,
    st.builds(
        lambda value, n: np.full(n, value, dtype=np.int64),
        st.integers(-1000, 1000),
        st.integers(0, 200),
    ),
    # Sorted / low-cardinality shapes that exercise long runs and small dicts.
    int_arrays.map(np.sort),
    int_arrays.map(lambda a: a % 5),
)


def _indices_for(draw, length):
    """Index arrays into a column of ``length`` rows, empty ones included."""
    if length == 0:
        return np.empty(0, dtype=np.int64)
    return draw(
        hnp.arrays(
            dtype=np.int64,
            shape=st.integers(0, 50),
            elements=st.integers(0, length - 1),
        )
    )


class TestCompressedExecutionProperties:
    @given(encodable_int_arrays, st.data())
    @settings(max_examples=60, deadline=None)
    def test_take_matches_plain_gather(self, values, data):
        indices = _indices_for(data.draw, len(values))
        for encoding_class in ALL_ENCODINGS:
            encoding = encoding_class()
            encoding.encode(values)
            np.testing.assert_array_equal(
                encoding.take(indices), values[indices],
                err_msg=f"take mismatch for {encoding.name}",
            )

    @given(encodable_int_arrays, st.integers(-1000, 1000))
    @settings(max_examples=60, deadline=None)
    def test_filter_mask_matches_plain_predicate(self, values, threshold):
        predicates = [
            lambda v: v < threshold,
            lambda v: v >= threshold,
            lambda v: v == threshold,
            lambda v: (v % 3) == 0,
        ]
        for encoding_class in ALL_ENCODINGS:
            encoding = encoding_class()
            encoding.encode(values)
            for predicate in predicates:
                np.testing.assert_array_equal(
                    encoding.filter_mask(predicate), predicate(values),
                    err_msg=f"filter_mask mismatch for {encoding.name}",
                )

    @given(encodable_int_arrays, int_arrays)
    @settings(max_examples=60, deadline=None)
    def test_isin_matches_plain_membership(self, values, lookup):
        expected = np.isin(values, lookup)
        for encoding_class in ALL_ENCODINGS:
            encoding = encoding_class()
            encoding.encode(values)
            np.testing.assert_array_equal(
                encoding.isin(lookup), expected,
                err_msg=f"isin mismatch for {encoding.name}",
            )

    @given(encodable_int_arrays)
    @settings(max_examples=60, deadline=None)
    def test_predicted_sizes_match_real_encodings(self, values):
        sizes = encoding_sizes(values)
        real = {
            "plain": PlainEncoding(),
            "rle": RunLengthEncoding(),
            "dictionary": DictionaryEncoding(),
            "delta": DeltaEncoding(),
        }
        for name, predicted in sizes.items():
            real[name].encode(values)
            assert predicted == real[name].encoded_bytes(), name

    @given(encodable_int_arrays, st.integers(-1000, 1000))
    @settings(max_examples=40, deadline=None)
    def test_query_where_compressed_equals_uncompressed(self, values, threshold):
        arrays = {"key": values, "payload": np.arange(len(values), dtype=np.int64)}
        compressed = ColumnQuery(ColumnTable.from_arrays("c", arrays, compress=True))
        plain = ColumnQuery(ColumnTable.from_arrays("p", arrays, compress=False))
        for query in (
            lambda q: q.where("key", lambda v: v < threshold),
            lambda q: q.where("key", lambda v: v == threshold),  # maybe empty
            lambda q: q.where_in("key", np.asarray([threshold, threshold, 0])),
        ):
            left, right = query(compressed), query(plain)
            np.testing.assert_array_equal(left.selection, right.selection)
            np.testing.assert_array_equal(left.column("payload"), right.column("payload"))

    @given(
        st.one_of(int_arrays, int_arrays.map(lambda a: a % 4)),
        st.one_of(int_arrays, int_arrays.map(lambda a: a % 4)),
    )
    @settings(max_examples=40, deadline=None)
    def test_join_compressed_equals_uncompressed(self, left_keys, right_keys):
        left_arrays = {"k": left_keys, "lv": np.arange(len(left_keys), dtype=np.int64)}
        right_arrays = {"k": right_keys, "rv": np.arange(len(right_keys), dtype=np.int64)}

        def join(compress):
            left = ColumnQuery(ColumnTable.from_arrays("l", left_arrays, compress=compress))
            right = ColumnQuery(ColumnTable.from_arrays("r", right_arrays, compress=compress))
            return left.join(right, "k", "k").collect()

        compressed, plain = join(True), join(False)
        assert compressed.column_names == plain.column_names
        for name in plain.column_names:
            np.testing.assert_array_equal(compressed.values(name), plain.values(name))
            assert compressed.values(name).dtype == plain.values(name).dtype

    @given(int_arrays)
    @settings(max_examples=40, deadline=None)
    def test_join_empty_result_dtypes_match_populated_case(self, keys):
        arrays = {"k": keys, "v": np.arange(len(keys), dtype=np.int64) * 0.5}
        left = ColumnQuery(ColumnTable.from_arrays("l", arrays))
        right_arrays = {"k": np.asarray([2000], dtype=np.int64), "w": np.asarray([1.5])}
        right = ColumnQuery(ColumnTable.from_arrays("r", right_arrays))
        empty = left.join(right, "k", "k").collect()  # 2000 is outside the key domain
        assert empty.row_count == 0
        assert empty.values("k").dtype == np.int64
        assert empty.values("v").dtype == np.float64
        assert empty.values("w").dtype == np.float64

    @given(encodable_int_arrays, st.data())
    @settings(max_examples=40, deadline=None)
    def test_column_vector_paths_match_values(self, values, data):
        indices = _indices_for(data.draw, len(values))
        column = ColumnVector("x", values)
        np.testing.assert_array_equal(column.take(indices), values[indices])
        np.testing.assert_array_equal(column.isin(np.asarray([0, 1])), np.isin(values, [0, 1]))
        np.testing.assert_array_equal(
            column.filter_mask(lambda v: v > 0), values > 0
        )


# ---------------------------------------------------------------------------- #
# Aggregation push-down: compressed grouping must be bit-identical to
# aggregating the plain, decoded (and gathered) column.
# ---------------------------------------------------------------------------- #

def _aggregate_reference(groups, values, function):
    """The seed GROUP BY: np.unique over decoded values + bincount/ufunc.at."""
    keys, inverse = np.unique(groups, return_inverse=True)
    if function == "count":
        return keys, np.bincount(inverse, minlength=len(keys)).astype(np.float64)
    if function == "sum":
        return keys, np.bincount(inverse, weights=values, minlength=len(keys))
    if function == "mean":
        totals = np.bincount(inverse, weights=values, minlength=len(keys))
        counts = np.bincount(inverse, minlength=len(keys))
        return keys, totals / np.maximum(counts, 1)
    result = np.full(len(keys), np.inf if function == "min" else -np.inf)
    reducer = np.minimum if function == "min" else np.maximum
    reducer.at(result, inverse, values)
    return keys, result


class TestAggregationPushdownProperties:
    @given(encodable_int_arrays, st.data())
    @settings(max_examples=60, deadline=None)
    def test_distinct_inverse_matches_unique(self, values, data):
        positions = _indices_for(data.draw, len(values))
        for encoding_class in ALL_ENCODINGS:
            encoding = encoding_class()
            encoding.encode(values)
            for selection, selected in ((None, values), (positions, values[positions])):
                keys, inverse = encoding.distinct_inverse(selection)
                expected_keys, expected_inverse = np.unique(selected, return_inverse=True)
                np.testing.assert_array_equal(
                    keys, expected_keys,
                    err_msg=f"distinct keys mismatch for {encoding.name}",
                )
                np.testing.assert_array_equal(
                    inverse, expected_inverse,
                    err_msg=f"inverse mismatch for {encoding.name}",
                )

    @given(encodable_int_arrays, st.data())
    @settings(max_examples=60, deadline=None)
    def test_group_reduce_bit_identical_to_plain_decode(self, groups, data):
        # Integer-valued floats keep every intermediate sum exact, so run
        # folding (RLE) and code-order accumulation (dictionary) must land on
        # bit-identical aggregates, not merely close ones.
        values = data.draw(
            hnp.arrays(
                dtype=np.float64,
                shape=st.just(len(groups)),
                elements=st.integers(-1000, 1000).map(float),
            )
        )
        positions = _indices_for(data.draw, len(groups))
        for encoding_class in ALL_ENCODINGS:
            encoding = encoding_class()
            encoding.encode(groups)
            for function in ("count", "sum", "mean", "min", "max"):
                for selection, grouped, reduced in (
                    (None, groups, values),
                    (positions, groups[positions], values[positions]),
                ):
                    keys, aggregates = encoding.group_reduce(reduced, function, selection)
                    expected_keys, expected = _aggregate_reference(grouped, reduced, function)
                    np.testing.assert_array_equal(
                        keys, expected_keys,
                        err_msg=f"group keys mismatch for {encoding.name}/{function}",
                    )
                    np.testing.assert_array_equal(
                        aggregates, expected,
                        err_msg=f"aggregate mismatch for {encoding.name}/{function}",
                    )

    @given(encodable_int_arrays, st.data())
    @settings(max_examples=40, deadline=None)
    def test_query_aggregate_compressed_equals_uncompressed(self, groups, data):
        values = data.draw(
            hnp.arrays(
                dtype=np.float64,
                shape=st.just(len(groups)),
                elements=st.integers(-1000, 1000).map(float),
            )
        )
        threshold = data.draw(st.integers(-1000, 1000))
        arrays = {"g": groups, "c": groups % 7 if len(groups) else groups, "v": values}
        compressed = ColumnQuery(ColumnTable.from_arrays("c", arrays, compress=True))
        plain = ColumnQuery(ColumnTable.from_arrays("p", arrays, compress=False))
        for narrow in (lambda q: q, lambda q: q.where("g", lambda v: v < threshold)):
            left, right = narrow(compressed), narrow(plain)
            for function in ("count", "sum", "mean", "min", "max"):
                fast = left.group_aggregate("g", "v", function)
                slow = right.group_aggregate("g", "v", function)
                np.testing.assert_array_equal(fast[0], slow[0])
                np.testing.assert_array_equal(fast[1], slow[1])
            fast_pivot = left.pivot("g", "c", "v")
            slow_pivot = right.pivot("g", "c", "v")
            for fast_part, slow_part in zip(fast_pivot, slow_pivot, strict=True):
                np.testing.assert_array_equal(fast_part, slow_part)


# ---------------------------------------------------------------------------- #
# Numerical kernels
# ---------------------------------------------------------------------------- #

class TestKernelProperties:
    @given(matrices(min_rows=3, max_rows=15, min_cols=1, max_cols=6))
    @settings(max_examples=40, deadline=None)
    def test_qr_reconstructs_input(self, matrix):
        if matrix.shape[0] < matrix.shape[1]:
            matrix = matrix.T
        q, r = householder_qr(matrix)
        scale = max(1.0, np.abs(matrix).max())
        np.testing.assert_allclose(q @ r, matrix, atol=1e-8 * scale)

    @given(matrices(min_rows=4, max_rows=20, min_cols=1, max_cols=5))
    @settings(max_examples=40, deadline=None)
    def test_lstsq_residual_orthogonal_to_columns(self, matrix):
        # The un-pivoted Householder QR targets full-column-rank designs
        # (which GenBase's expression matrices always are); restrict the
        # property to reasonably conditioned full-rank inputs.
        from hypothesis import assume

        assume(np.linalg.matrix_rank(matrix) == matrix.shape[1])
        assume(np.linalg.cond(matrix) < 1e6)
        # A denormal column norm (e.g. a column of 5e-324) is full-rank and
        # well-conditioned by the metrics above, yet overflows the pivot
        # division in back substitution — outside the kernel's domain.
        assume(float(np.linalg.norm(matrix, axis=0).min()) > 1e-100)
        rng = np.random.default_rng(0)
        target = rng.standard_normal(matrix.shape[0])
        beta, _ = lstsq_qr(matrix, target, method="householder")
        residual = target - matrix @ beta
        # Normal equations: the residual is orthogonal to the column space.
        scale = max(1.0, np.abs(matrix).max() * np.abs(target).max())
        np.testing.assert_allclose(matrix.T @ residual, 0, atol=1e-6 * scale)

    @given(matrices(min_rows=3, max_rows=20, min_cols=2, max_cols=6))
    @settings(max_examples=40, deadline=None)
    def test_covariance_symmetric_psd(self, matrix):
        cov = covariance_matrix(matrix)
        np.testing.assert_array_equal(cov, cov.T)
        eigenvalues = np.linalg.eigvalsh(cov)
        assert eigenvalues.min() >= -1e-6 * max(1.0, abs(eigenvalues.max()))

    @given(matrices(min_rows=3, max_rows=15, min_cols=3, max_cols=10))
    @settings(max_examples=30, deadline=None)
    def test_lanczos_values_bounded_by_frobenius(self, matrix):
        result = lanczos_svd(matrix, k=3, seed=1)
        frobenius = np.linalg.norm(matrix)
        assert np.all(result.singular_values <= frobenius + 1e-6)
        assert np.all(result.singular_values >= -1e-9)
        assert np.all(np.diff(result.singular_values) <= 1e-9)

    @given(
        hnp.arrays(dtype=np.float64, shape=st.integers(2, 40), elements=finite_floats),
        hnp.arrays(dtype=np.float64, shape=st.integers(2, 40), elements=finite_floats),
    )
    @settings(max_examples=60, deadline=None)
    def test_rank_sum_symmetry_and_bounds(self, first, second):
        forward = rank_sum_test(first, second)
        backward = rank_sum_test(second, first)
        assert 0.0 <= forward.p_value <= 1.0
        # Swapping the samples flips the z-score but keeps the p-value.
        assert forward.p_value == pytest.approx(backward.p_value, abs=1e-9)
        assert forward.z_score == pytest.approx(-backward.z_score, abs=1e-9)

    @given(hnp.arrays(dtype=np.float64, shape=st.integers(1, 60), elements=finite_floats))
    @settings(max_examples=60, deadline=None)
    def test_midranks_sum_is_invariant(self, values):
        ranks, tie_sizes = _rank_with_ties(values)
        n = len(values)
        assert ranks.sum() == pytest.approx(n * (n + 1) / 2)
        assert int(tie_sizes.sum()) == n

    @given(matrices(min_rows=5, max_rows=25, min_cols=1, max_cols=4))
    @settings(max_examples=30, deadline=None)
    def test_regression_r_squared_bounded(self, features):
        rng = np.random.default_rng(0)
        target = rng.standard_normal(features.shape[0])
        fit = linear_regression(features, target)
        assert fit.r_squared <= 1.0 + 1e-9


# ---------------------------------------------------------------------------- #
# Storage and serialisation
# ---------------------------------------------------------------------------- #

class TestStorageProperties:
    @given(
        st.lists(
            st.tuples(st.integers(-10**6, 10**6), finite_floats,
                      st.text(max_size=20).filter(lambda s: "\x00" not in s)),
            max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_heap_file_roundtrip(self, rows):
        schema = Schema.from_pairs(
            [("id", ColumnType.INT), ("value", ColumnType.FLOAT), ("label", ColumnType.STRING)]
        )
        heap = HeapFile(schema, page_size=512)
        for row in rows:
            heap.insert(schema.coerce_row(row))
        restored = list(heap.scan())
        assert len(restored) == len(rows)
        for (id_value, float_value, text), row in zip(rows, restored, strict=True):
            assert row[0] == id_value
            assert row[1] == pytest.approx(float_value, nan_ok=True)
            assert row[2] == text

    @given(matrices(min_rows=1, max_rows=10, min_cols=1, max_cols=6))
    @settings(max_examples=40, deadline=None)
    def test_matrix_csv_roundtrip_exact(self, matrix):
        restored = matrix_from_csv_string(matrix_to_csv_string(matrix))
        np.testing.assert_array_equal(restored, matrix)


# ---------------------------------------------------------------------------- #
# MapReduce
# ---------------------------------------------------------------------------- #

class TestMapReduceProperties:
    @given(st.lists(st.integers(-50, 50), max_size=100), st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_grouped_sum_matches_direct_sum(self, values, n_splits):
        engine = MapReduceEngine(n_splits=n_splits)

        def mapper(value):
            yield (value % 5, value)

        def reducer(key, group):
            yield (key, sum(group))

        output = dict(engine.run(MapReduceJob("sum", mapper, reducer, combiner=reducer), values))
        expected: dict[int, int] = {}
        for value in values:
            expected[value % 5] = expected.get(value % 5, 0) + value
        assert output == expected

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=80), st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_split_count_never_exceeds_requested(self, values, n_splits):
        engine = MapReduceEngine(n_splits=n_splits)

        def mapper(value):
            yield (None, value)

        def reducer(key, group):
            yield (key, len(group))

        engine.run(MapReduceJob("count", mapper, reducer), values)
        assert engine.history[-1].counters.splits <= n_splits
        assert engine.history[-1].counters.map_input_records == len(values)
