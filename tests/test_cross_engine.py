"""Cross-engine equivalence: one shared plan, every engine, identical answers.

The tentpole guarantee of the shared query surface: the five GenBase
queries produce **byte-identical summaries** across all five engine
families — column store, row store (postgres), array DBMS (scidb),
MapReduce (hadoop) and the R environment — at tiny and small sizes,
with every filter step running through the shared expression AST.

The only tolerated deviations are analytics-tier, not data-management:
Mahout's MapReduce kernels (naive summation order) differ from the
LAPACK/BLAS tier in the last ulps of their floating-point outputs, and
Mahout has no biclustering at all.  The matrices *entering* those
kernels are verified bitwise-identical through the shared plans.

Also here: the per-engine executor equivalence properties (chunked
shared-plan filters match plain evaluation, including chunk-skip edge
cases) and the MapReduce filter-before-shuffle accounting.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np
import pytest
from hypothesis import example, given, settings, strategies as st

from repro.arraydb import ChunkedArray, operators as ops
from repro.arraydb.bridge import (
    ArrayFrame,
    metadata_array,
    run_shared_plan as run_array_plan,
)
from repro.cluster import Cluster, PartitionedTable, PartitionStats
from repro.cluster.bridge import (
    expression_skips_partition,
    run_shared_plan as run_cluster_plan,
)
from repro.core import QUERY_NAMES, BenchmarkRunner
from repro.core.engines import MULTI_NODE_ENGINES, make_engine
from repro.core.queries import (
    expression_pivot_plan,
    gene_expression_plan,
    patient_expression_plan,
)
from repro.core.runner import RunStatus
from repro.core.spec import default_parameters
from repro.fuzz.tolerances import summary_tolerance
from repro.mapreduce import HiveSession, HiveTable, MapReduceEngine
from repro.mapreduce.bridge import run_shared_plan as run_mr_plan
from repro.plan import Aggregate, Filter, Scan, col
from repro.rlang.bridge import run_shared_plan as run_r_plan
from repro.rlang.dataframe import DataFrame

#: Pre-migration multi-node summaries (generated on main before the engines
#: moved onto the cluster bridge) — the byte-identity reference.
MULTINODE_SNAPSHOT = json.loads(
    (pathlib.Path(__file__).parent / "data" / "multinode_summaries.json").read_text()
)

#: One engine per family; columnstore-udf is the comparison base.
ENGINE_FAMILIES = ("columnstore-udf", "postgres-r", "scidb", "hadoop", "vanilla-r")


@pytest.fixture(scope="module")
def runner() -> BenchmarkRunner:
    return BenchmarkRunner(timeout_seconds=300, verify=False)


def _all_summaries(dataset, runner):
    summaries = {}
    for name in ENGINE_FAMILIES:
        engine = make_engine(name)
        engine.load(dataset)
        summaries[name] = {}
        for query in QUERY_NAMES:
            result = runner.run(query, engine, dataset)
            summaries[name][query] = (result.status, result.output.summary
                                      if result.status is RunStatus.OK else None)
    return summaries


def _assert_summary_equal(engine: str, query: str, actual: dict, base: dict):
    assert set(actual) == set(base), f"{engine}/{query}: summary keys differ"
    for key, value in actual.items():
        # The per-(engine, field) tolerance table is shared with the
        # differential fuzzer: Mahout's reassociated kernels on hadoop are
        # ulp-tolerant, everything else is exact (repro.fuzz.tolerances).
        tolerance = summary_tolerance(engine, key)
        if isinstance(value, float):
            ok = tolerance.matches(value, base[key])
        else:
            ok = value == base[key]
        assert ok, (
            f"{engine}/{query}/{key} ({tolerance.label}): {value} vs {base[key]}"
        )


class TestCrossEngineByteIdentity:
    """All five families answer the five queries byte-identically."""

    @pytest.mark.parametrize("fixture_name", ["tiny_dataset", "small_dataset"])
    def test_summaries_identical_across_engines(self, fixture_name, request, runner):
        dataset = request.getfixturevalue(fixture_name)
        summaries = _all_summaries(dataset, runner)
        base = summaries["columnstore-udf"]
        for engine in ENGINE_FAMILIES:
            for query in QUERY_NAMES:
                status, summary = summaries[engine][query]
                if engine == "hadoop" and query == "biclustering":
                    assert status is RunStatus.UNSUPPORTED
                    continue
                assert status is RunStatus.OK, f"{engine}/{query} failed"
                _assert_summary_equal(engine, query, summary, base[query][1])

    def test_migrated_adapters_leave_no_raw_callable_filters(self):
        """The migrated adapters contain no lambda predicates.

        Dataclass ``default_factory`` lambdas are fine; what must be gone
        are the legacy predicate idioms (``lambda v: …`` over attribute
        vectors, ``lambda row: …`` over Hive records, ``lambda f: …``
        over data frames, ``lambda p: …`` over node partitions).
        """
        import inspect

        from repro.core.engines import hadoop, multinode, phi, rlang_engine, scidb

        for module in (scidb, hadoop, rlang_engine, phi, multinode):
            source = inspect.getsource(module)
            for idiom in ("lambda v", "lambda row", "lambda f", "lambda p"):
                assert idiom not in source, (
                    f"{module.__name__} still builds raw callable predicates"
                )


class TestMultiNodeByteIdentity:
    """The bridge migration changed no answer: every multi-node summary is
    byte-identical to the snapshot taken on main before the migration."""

    @pytest.mark.parametrize("engine_name", MULTI_NODE_ENGINES)
    def test_tiny_summaries_match_pre_migration_snapshot(self, engine_name, runner,
                                                         tiny_dataset):
        self._assert_snapshot(engine_name, "tiny", tiny_dataset, (1, 2, 4), runner)

    @pytest.mark.parametrize("engine_name", MULTI_NODE_ENGINES)
    def test_small_summaries_match_pre_migration_snapshot(self, engine_name, runner,
                                                          small_dataset):
        self._assert_snapshot(engine_name, "small", small_dataset, (2,), runner)

    @staticmethod
    def _assert_snapshot(engine_name, size, dataset, node_counts, runner):
        for n_nodes in node_counts:
            for query in QUERY_NAMES:
                result = runner.run(query, engine_name, dataset, n_nodes=n_nodes)
                key = f"{size}/{engine_name}/{n_nodes}/{query}"
                expected = MULTINODE_SNAPSHOT[key]
                if "__status__" in expected:
                    assert result.status.name == expected["__status__"], key
                    continue
                assert result.status is RunStatus.OK, f"{key}: {result.error}"
                assert result.output.summary == expected, key


def _table(columns_per_partition):
    return PartitionedTable.from_partitions(
        "patients",
        [{name: np.asarray(values) for name, values in part.items()}
         for part in columns_per_partition],
    )


class TestClusterPartitionPruning:
    """The cluster bridge prunes partitions from synopses, exactly."""

    def test_strictness_at_partition_edge(self):
        table = _table([{"age": np.arange(0, 10)}, {"age": np.arange(10, 20)}])
        low, high = table.synopses
        # Partition 2 spans [10, 19]: `< 10` excludes it, `<= 10` must not.
        assert expression_skips_partition(col("age") < 10, high)
        assert not expression_skips_partition(col("age") <= 10, high)
        # Partition 1 spans [0, 9]: `> 9` excludes it, `>= 9` must not.
        assert expression_skips_partition(col("age") > 9, low)
        assert not expression_skips_partition(col("age") >= 9, low)

    def test_filter_prunes_and_matches_plain_evaluation(self):
        ages = [np.arange(0, 10), np.arange(10, 20), np.arange(20, 30)]
        table = _table([{"age": a} for a in ages])
        stats = PartitionStats()
        cluster = Cluster(3)
        fragments = run_cluster_plan(
            Filter(Scan("patients"), col("age") < 10), table, cluster, stats=stats
        )
        np.testing.assert_array_equal(fragments[0], np.arange(10))
        assert all(len(fragment) == 0 for fragment in fragments[1:])
        assert stats.partitions_skipped == 2
        assert stats.partitions_scanned == 1
        assert stats.rows_kept == 10

    def test_membership_skips_via_distinct_set(self):
        # disease 7 lies inside both partitions' [min, max] spans; only the
        # distinct-set synopsis can prove the second partition empty.
        table = _table([
            {"disease_id": np.array([5, 6, 7, 9])},
            {"disease_id": np.array([5, 9, 5, 9])},
        ])
        predicate = col("disease_id").isin([7])
        assert not expression_skips_partition(predicate, table.synopses[0])
        assert expression_skips_partition(predicate, table.synopses[1])

    def test_all_partitions_pruned_returns_correct_empty_result(self):
        table = _table([{"age": np.arange(0, 10)}, {"age": np.arange(10, 20)}])
        stats = PartitionStats()
        fragments = run_cluster_plan(
            Filter(Scan("patients"), col("age") < -5), table, Cluster(2), stats=stats
        )
        assert [len(fragment) for fragment in fragments] == [0, 0]
        assert stats.partitions_skipped == 2
        assert stats.partitions_scanned == 0
        assert stats.rows_kept == 0

    def test_single_node_pruning_is_a_noop(self):
        table = _table([{"age": np.arange(0, 20)}])
        stats = PartitionStats()
        fragments = run_cluster_plan(
            Filter(Scan("patients"), col("age") < 5), table, Cluster(1), stats=stats
        )
        np.testing.assert_array_equal(fragments[0], np.arange(5))
        assert stats.partitions_skipped == 0
        assert stats.partitions_scanned == 1

    def test_unoptimized_lowering_matches_optimized(self, rng):
        ages = rng.integers(0, 100, size=60)
        genders = rng.integers(0, 2, size=60)
        parts = np.array_split(np.arange(60), 4)
        table = _table([
            {"age": ages[p], "gender": genders[p]} for p in parts
        ])
        plan = Filter(Scan("patients"), (col("gender") == 1) & (col("age") < 30))
        optimized = run_cluster_plan(plan, table, Cluster(4), optimized=True)
        unoptimized = run_cluster_plan(plan, table, Cluster(4), optimized=False)
        for a, b in zip(optimized, unoptimized, strict=True):
            np.testing.assert_array_equal(a, b)

    def test_aggregate_plan_reduces_partials_on_driver(self):
        keys = np.array([1, 2, 1, 2, 3, 1])
        values = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        parts = [np.array([0, 1]), np.array([2, 3]), np.array([4, 5])]
        table = _table([{"k": keys[p], "v": values[p]} for p in parts])
        merged, means = run_cluster_plan(
            Aggregate(Scan("patients"), "k", "v", "mean"), table, Cluster(3)
        )
        np.testing.assert_array_equal(merged, [1, 2, 3])
        np.testing.assert_allclose(means, [10.0 / 3, 3.0, 5.0])

    def test_engine_statistics_prunes_partitions(self, tiny_dataset, runner):
        # 16 partitions of ~4 patients but only 12 sampled ids: at least
        # four partitions cannot contain any sample and must be pruned.
        engine = make_engine("pbdr", n_nodes=16)
        engine.load(tiny_dataset)
        result = runner.run("statistics", engine, tiny_dataset)
        assert result.status is RunStatus.OK, result.error
        assert engine.partition_stats.partitions_skipped >= 4
        assert engine.partition_stats.partitions_scanned <= 12
        reference = make_engine("pbdr", n_nodes=1)
        reference.load(tiny_dataset)
        baseline = runner.run("statistics", reference, tiny_dataset)
        assert result.output.summary == baseline.output.summary


class TestSciDBChunkSkipping:
    """The array engine's shared-plan filters skip chunks via synopses."""

    def test_engine_filters_skip_chunks(self, tiny_dataset, runner):
        engine = make_engine("scidb", chunk_size=4)
        engine.load(tiny_dataset)
        result = runner.run("biclustering", engine, tiny_dataset)
        assert result.status is RunStatus.OK, result.error
        # The age/gender conjunction runs chunk-wise over the metadata
        # arrays; with 4-wide chunks some chunks' min/max synopses must
        # exclude the predicate (deterministic dataset, seed 7).
        assert engine.filter_stats.chunks_skipped > 0
        assert engine.filter_stats.chunks_scanned > 0
        reference = make_engine("scidb")
        reference.load(tiny_dataset)
        baseline = runner.run("biclustering", reference, tiny_dataset)
        assert result.output.summary == baseline.output.summary

    def test_bridge_membership_skip_on_dimension(self):
        values = np.arange(100.0)
        frames = {"t": ArrayFrame("i", {"v": metadata_array("v", values, "i", "v", 10)})}
        stats = ops.FilterStats()
        coords = run_array_plan(
            Filter(Scan("t"), col("i").isin([3, 55])), frames, stats=stats
        )
        np.testing.assert_array_equal(coords, [3, 55])
        assert stats.chunks_skipped == 8

    def test_bridge_conjunction_skips_via_either_synopsis(self):
        ages = np.repeat([30.0, 70.0], 50)          # second half excludable
        genders = np.tile([0.0, 1.0], 50)           # mixed everywhere
        frames = {
            "patients": ArrayFrame("patient_id", {
                "age": metadata_array("age", ages, "patient_id", "age", 10),
                "gender": metadata_array("gender", genders, "patient_id", "gender", 10),
            })
        }
        stats = ops.FilterStats()
        coords = run_array_plan(
            Filter(Scan("patients"), (col("gender") == 1) & (col("age") < 40)),
            frames, stats=stats,
        )
        expected = np.flatnonzero((genders == 1) & (ages < 40))
        np.testing.assert_array_equal(coords, expected)
        assert stats.chunks_skipped == 5  # the five all-age-70 chunks


class TestChunkedFilterProperties:
    """Hypothesis: shared-plan filters on chunked arrays match plain numpy."""

    @settings(deadline=None, max_examples=60)
    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6,
                      allow_nan=False, allow_infinity=False, width=64),
            min_size=1, max_size=120,
        ),
        chunk=st.integers(min_value=1, max_value=17),
        threshold=st.floats(min_value=-1e6, max_value=1e6,
                            allow_nan=False, allow_infinity=False, width=64),
    )
    # All chunks skipped: every value below the threshold's reach.
    @example(values=[1.0] * 40, chunk=7, threshold=0.0)
    # Boundary-straddling runs: equal-value runs crossing chunk edges.
    @example(values=[0.0] * 9 + [5.0] * 9 + [0.0] * 9, chunk=6, threshold=5.0)
    # Threshold exactly on a chunk's min (strictness edge).
    @example(values=list(range(30)), chunk=10, threshold=10.0)
    def test_range_filter_matches_plain_evaluation(self, values, chunk, threshold):
        dense = np.asarray(values)
        array = ChunkedArray.from_dense("v", dense, ["i"], "v", chunk_sizes=[chunk])
        stats = ops.FilterStats()
        filtered = ops.filter_attribute(array, None, col("v") < threshold, stats=stats)
        coords, kept = filtered.attribute_cells("v")
        expected = np.flatnonzero(dense < threshold)
        np.testing.assert_array_equal(coords[0], expected)
        np.testing.assert_array_equal(kept, dense[expected])
        assert stats.chunks_skipped + stats.chunks_scanned == array.chunk_count

    @settings(deadline=None, max_examples=40)
    @given(
        ages=st.lists(st.integers(min_value=0, max_value=99),
                      min_size=1, max_size=80),
        chunk=st.integers(min_value=1, max_value=13),
        max_age=st.integers(min_value=-5, max_value=105),
        gender=st.integers(min_value=0, max_value=1),
    )
    def test_metadata_conjunction_matches_plain_evaluation(self, ages, chunk,
                                                           max_age, gender):
        age_values = np.asarray(ages, dtype=np.float64)
        gender_values = np.asarray([i % 2 for i in range(len(ages))], dtype=np.float64)
        frames = {
            "patients": ArrayFrame("patient_id", {
                "age": metadata_array("age", age_values, "patient_id", "age", chunk),
                "gender": metadata_array("gender", gender_values, "patient_id",
                                         "gender", chunk),
            })
        }
        coords = run_array_plan(
            Filter(Scan("patients"),
                   (col("gender") == gender) & (col("age") < max_age)),
            frames,
        )
        expected = np.flatnonzero((gender_values == gender) & (age_values < max_age))
        np.testing.assert_array_equal(coords, expected)


class TestMapReduceFilterBeforeShuffle:
    """The fused join job filters map-side: fewer jobs, smaller shuffles."""

    @pytest.fixture()
    def loaded(self, tiny_dataset):
        engine = MapReduceEngine(n_splits=4)
        session = HiveSession(engine)
        tables = {
            "microarray": HiveTable.from_array(
                "microarray", ["gene_id", "patient_id", "expression_value"],
                tiny_dataset.microarray_relational()),
            "genes": HiveTable.from_array(
                "genes", ["gene_id", "target", "position", "length", "function"],
                tiny_dataset.genes_relational()),
            "patients": HiveTable.from_array(
                "patients",
                ["patient_id", "age", "gender", "zipcode", "disease_id",
                 "drug_response"],
                tiny_dataset.patients_relational()),
        }
        return engine, session, tables

    def test_fused_plan_matches_legacy_three_job_chain(self, loaded, tiny_dataset):
        engine, session, tables = loaded
        threshold = default_parameters(tiny_dataset.spec).function_threshold(
            tiny_dataset.spec
        )
        with pytest.warns(DeprecationWarning):
            selected = session.select(
                tables["genes"], lambda row: row["function"] < threshold
            )
        projected = session.project(selected, ["gene_id"])
        joined = session.join(projected, tables["microarray"], "gene_id", "gene_id")
        legacy_jobs = engine.jobs_run

        fused_engine = MapReduceEngine(n_splits=4)
        fused = run_mr_plan(
            expression_pivot_plan(gene_expression_plan(threshold)),
            tables, HiveSession(fused_engine),
        )
        matrix, rows, cols = fused
        legacy_rows = np.asarray(joined.column_values("patient_id"), dtype=np.int64)
        legacy_cols = np.asarray(joined.column_values("gene_id_right"), dtype=np.int64)
        legacy_values = np.asarray(joined.column_values("expression_value"))
        row_labels, row_pos = np.unique(legacy_rows, return_inverse=True)
        col_labels, col_pos = np.unique(legacy_cols, return_inverse=True)
        legacy_matrix = np.zeros((len(row_labels), len(col_labels)))
        legacy_matrix[row_pos, col_pos] = legacy_values
        np.testing.assert_array_equal(matrix, legacy_matrix)
        np.testing.assert_array_equal(rows, row_labels)
        np.testing.assert_array_equal(cols, col_labels)
        # One fused job replaces the select → project → join chain.
        assert fused_engine.jobs_run == 1 < legacy_jobs

    def test_filtered_rows_never_reach_the_shuffle(self, loaded):
        engine, session, tables = loaded
        run_mr_plan(
            patient_expression_plan(col("patient_id").isin([0, 1])),
            tables, session,
        )
        job = engine.history[-1]
        n_micro = len(tables["microarray"])
        n_patients = len(tables["patients"])
        # Every input row is mapped, but the patients the predicate drops
        # are filtered *before* the spill: only the 2 surviving patient
        # rows (plus the unfiltered microarray side) reach the shuffle.
        assert job.counters.map_input_records == n_micro + n_patients
        assert job.counters.map_output_records == n_micro + 2

    def test_unoptimized_lowering_matches_optimized(self, loaded, tiny_dataset):
        _engine, session, tables = loaded
        plan = expression_pivot_plan(
            patient_expression_plan(col("disease_id").isin([1, 2, 3]))
        )
        optimized = run_mr_plan(plan, tables, session, optimized=True)
        unoptimized = run_mr_plan(plan, tables, session, optimized=False)
        for a, b in zip(optimized, unoptimized, strict=True):
            np.testing.assert_array_equal(a, b)


class TestRLangBridge:
    """The R executor matches plain-frame evaluation and both plan shapes."""

    def test_optimized_matches_unoptimized(self, tiny_dataset):
        micro = tiny_dataset.microarray_relational()
        frames = {
            "microarray": DataFrame({
                "gene_id": micro[:, 0].astype(np.int64),
                "patient_id": micro[:, 1].astype(np.int64),
                "expression_value": micro[:, 2],
            }),
            "patients": DataFrame({
                "patient_id": tiny_dataset.patients.patient_id,
                "age": tiny_dataset.patients.age,
                "gender": tiny_dataset.patients.gender,
                "disease_id": tiny_dataset.patients.disease_id,
            }),
        }
        plan = expression_pivot_plan(
            patient_expression_plan(
                (col("gender") == 1) & (col("age") < 50)
            )
        )
        optimized = run_r_plan(plan, frames, optimized=True)
        unoptimized = run_r_plan(plan, frames, optimized=False)
        for a, b in zip(optimized, unoptimized, strict=True):
            np.testing.assert_array_equal(a, b)
        mask = (tiny_dataset.patients.gender == 1) & (tiny_dataset.patients.age < 50)
        np.testing.assert_array_equal(optimized[1], np.flatnonzero(mask))
        np.testing.assert_array_equal(
            optimized[0], tiny_dataset.expression_matrix[np.flatnonzero(mask), :]
        )

    def test_group_aggregate_contract(self):
        frames = {
            "t": DataFrame({
                "k": np.array([2, 1, 2, 1, 3]),
                "v": np.array([1.0, 2.0, 3.0, 4.0, 5.0]),
            })
        }
        from repro.plan import Aggregate

        keys, values = run_r_plan(Aggregate(Scan("t"), "k", "v", "mean"), frames)
        np.testing.assert_array_equal(keys, [1, 2, 3])
        np.testing.assert_allclose(values, [3.0, 2.0, 5.0])
