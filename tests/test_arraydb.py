"""Tests for the chunked array DBMS."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arraydb import ArraySchema, Attribute, ChunkedArray, Dimension, linalg, operators as ops
from repro.arraydb.chunk import Chunk
from repro.plan import col


@pytest.fixture()
def expression_array(rng) -> tuple[ChunkedArray, np.ndarray]:
    matrix = rng.random((45, 30))
    array = ChunkedArray.from_dense(
        "expression", matrix, ["patient_id", "gene_id"], chunk_sizes=[16, 8]
    )
    return array, matrix


class TestSchema:
    def test_dimension_properties(self):
        dim = Dimension("gene_id", 0, 99, 25)
        assert dim.length == 100
        assert dim.chunk_count == 4
        assert dim.chunk_of(26) == 1
        assert dim.chunk_bounds(3) == (75, 99)
        with pytest.raises(IndexError):
            dim.chunk_of(100)
        with pytest.raises(IndexError):
            dim.chunk_bounds(4)

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            Dimension("x", 5, 2, 10)
        with pytest.raises(ValueError):
            Dimension("x", 0, 5, 0)

    def test_schema_lookup_and_rename(self):
        schema = ArraySchema(
            "a",
            [Dimension("i", 0, 9, 5), Dimension("j", 0, 4, 5)],
            [Attribute("value"), Attribute("count", np.int64)],
        )
        assert schema.shape == (10, 5)
        assert schema.dimension_index("j") == 1
        assert schema.attribute("count").dtype == np.dtype(np.int64)
        with pytest.raises(KeyError):
            schema.dimension("k")
        with pytest.raises(KeyError):
            schema.attribute("missing")
        assert schema.renamed("b").name == "b"
        assert "value" in repr(schema)

    def test_schema_validation(self):
        with pytest.raises(ValueError):
            ArraySchema("a", [], [Attribute("v")])
        with pytest.raises(ValueError):
            ArraySchema("a", [Dimension("i", 0, 1, 1)], [])
        with pytest.raises(ValueError):
            ArraySchema("a", [Dimension("i", 0, 1, 1)], [Attribute("i")])


class TestChunkedArray:
    def test_dense_roundtrip(self, expression_array):
        array, matrix = expression_array
        np.testing.assert_allclose(array.to_dense(), matrix)
        assert array.chunk_count == 3 * 4  # ceil(45/16) x ceil(30/8)
        assert array.cell_count == matrix.size
        assert array.nbytes > 0

    def test_chunk_shapes_and_origins(self, expression_array):
        array, _matrix = expression_array
        chunk = array.chunk_at((2, 3))
        assert chunk is not None
        assert chunk.origin == (32, 24)
        assert chunk.shape == (13, 6)  # edge chunk is smaller

    def test_attribute_cells(self, expression_array):
        array, matrix = expression_array
        (patients, genes), values = array.attribute_cells()
        assert len(values) == matrix.size
        reconstructed = np.zeros_like(matrix)
        reconstructed[patients, genes] = values
        np.testing.assert_allclose(reconstructed, matrix)

    def test_from_dense_validation(self, rng):
        with pytest.raises(ValueError):
            ChunkedArray.from_dense("a", rng.random((3, 3)), ["only_one_name"])

    def test_chunk_validation(self):
        with pytest.raises(ValueError):
            Chunk(coordinates=(0,), origin=(0,), data={"a": np.ones(3), "b": np.ones(4)})

    def test_masked_attribute_fill(self):
        chunk = Chunk(coordinates=(0,), origin=(0,), data={"v": np.arange(4.0)})
        chunk.mask = np.array([True, False, True, False])
        np.testing.assert_array_equal(chunk.masked_attribute("v", fill=-1), [0, -1, 2, -1])
        assert chunk.cell_count == 2


class TestOperators:
    def test_filter_keeps_shape_masks_cells(self, expression_array):
        array, matrix = expression_array
        filtered = ops.filter_attribute(array, None, col("value") > 0.5)
        assert filtered.cell_count == int((matrix > 0.5).sum())
        dense = filtered.to_dense(fill=0.0)
        np.testing.assert_allclose(dense[matrix > 0.5], matrix[matrix > 0.5])
        assert np.all(dense[matrix <= 0.5] == 0.0)

    def test_filter_expression_validates_attributes(self, expression_array):
        array, _ = expression_array
        with pytest.raises(KeyError):
            ops.filter_attribute(array, None, col("bogus") > 0.5)
        with pytest.raises(KeyError):
            ops.filter_attribute(array, "bogus", col("value") > 0.5)

    def test_filter_range_predicate_skips_chunks(self):
        # Sorted values: every chunk past the threshold is excluded by its
        # min/max synopsis and must be skipped without touching its cells.
        values = np.arange(100.0)
        array = ChunkedArray.from_dense("v", values, ["i"], "v", chunk_sizes=[10])
        stats = ops.FilterStats()
        filtered = ops.filter_attribute(array, None, col("v") < 25, stats=stats)
        coords, kept = filtered.attribute_cells("v")
        np.testing.assert_array_equal(coords[0], np.arange(25))
        assert stats.chunks_skipped == 7
        assert stats.chunks_scanned == 3
        assert stats.cells_kept == 25

    def test_filter_all_chunks_skipped(self):
        values = np.arange(50.0)
        array = ChunkedArray.from_dense("v", values, ["i"], "v", chunk_sizes=[10])
        stats = ops.FilterStats()
        filtered = ops.filter_attribute(array, None, col("v") > 1e6, stats=stats)
        assert filtered.cell_count == 0
        assert stats.chunks_skipped == 5
        assert stats.chunks_scanned == 0

    def test_filter_skip_is_exact_about_strictness(self):
        values = np.arange(30.0)
        array = ChunkedArray.from_dense("v", values, ["i"], "v", chunk_sizes=[10])
        # v <= 10 must keep the boundary cell in the second chunk (min=10).
        kept = ops.filter_attribute(array, None, col("v") <= 10)
        coords, _ = kept.attribute_cells("v")
        np.testing.assert_array_equal(coords[0], np.arange(11))
        # v < 10 may skip that chunk entirely.
        stats = ops.FilterStats()
        strict = ops.filter_attribute(array, None, col("v") < 10, stats=stats)
        coords, _ = strict.attribute_cells("v")
        np.testing.assert_array_equal(coords[0], np.arange(10))
        assert stats.chunks_skipped == 2

    def test_filter_legacy_callable_warns_and_matches(self, expression_array):
        array, matrix = expression_array
        with pytest.warns(DeprecationWarning, match="deprecated"):
            legacy = ops.filter_attribute(array, "value", lambda v: v > 0.5)
        expression = ops.filter_attribute(array, None, col("value") > 0.5)
        np.testing.assert_array_equal(
            legacy.to_dense(fill=np.nan), expression.to_dense(fill=np.nan)
        )

    def test_between_restricts_coordinates(self, expression_array):
        array, matrix = expression_array
        result = ops.between(array, {"patient_id": (10, 19), "gene_id": (0, 4)})
        assert result.cell_count == 10 * 5
        dense = result.to_dense(fill=np.nan)
        np.testing.assert_allclose(dense[10:20, :5], matrix[10:20, :5])

    def test_between_unknown_dimension(self, expression_array):
        array, _ = expression_array
        with pytest.raises(KeyError):
            ops.between(array, {"bogus": (0, 1)})

    def test_subarray_by_index_compacts(self, expression_array):
        array, matrix = expression_array
        chosen = [3, 7, 11, 29]
        sub = ops.subarray_by_index(array, "gene_id", chosen)
        assert sub.shape == (45, 4)
        np.testing.assert_allclose(sub.to_dense(), matrix[:, chosen])

    def test_apply_and_project(self, expression_array):
        array, matrix = expression_array
        applied = ops.apply(array, "doubled", lambda attrs: attrs["value"] * 2)
        assert "doubled" in applied.schema.attribute_names
        np.testing.assert_allclose(applied.to_dense("doubled"), matrix * 2)
        projected = ops.project(applied, ["doubled"])
        assert projected.schema.attribute_names == ("doubled",)

    def test_aggregate_global_and_along(self, expression_array):
        array, matrix = expression_array
        assert ops.aggregate(array, "value", "sum") == pytest.approx(matrix.sum())
        assert ops.aggregate(array, "value", "count") == matrix.size
        assert ops.aggregate(array, "value", "avg") == pytest.approx(matrix.mean())
        assert ops.aggregate(array, "value", "min") == pytest.approx(matrix.min())
        assert ops.aggregate(array, "value", "max") == pytest.approx(matrix.max())
        per_gene = ops.aggregate(array, "value", "avg", along="gene_id")
        np.testing.assert_allclose(per_gene, matrix.mean(axis=0))
        per_patient = ops.aggregate(array, "value", "max", along="patient_id")
        np.testing.assert_allclose(per_patient, matrix.max(axis=1))
        with pytest.raises(ValueError):
            ops.aggregate(array, "value", "median")

    def test_aggregate_respects_mask(self, expression_array):
        array, matrix = expression_array
        filtered = ops.filter_attribute(array, None, col("value") > 0.5)
        assert ops.aggregate(filtered, "value", "count") == int((matrix > 0.5).sum())

    def test_cross_join_broadcasts_metadata(self, expression_array, rng):
        array, matrix = expression_array
        functions = rng.integers(0, 20, 30).astype(float)
        metadata = ChunkedArray.from_dense(
            "gene_function", functions, ["gene_id"], attribute_name="function", chunk_sizes=[8]
        )
        joined = ops.cross_join(array, metadata, "gene_id")
        assert set(joined.schema.attribute_names) == {"value", "function"}
        dense_function = joined.to_dense("function")
        np.testing.assert_allclose(dense_function, np.tile(functions, (45, 1)))

    def test_cross_join_requires_1d_right(self, expression_array):
        array, _ = expression_array
        with pytest.raises(ValueError):
            ops.cross_join(array, array, "gene_id")

    def test_redimension_builds_matrix(self, rng):
        rows = np.repeat(np.arange(5), 4)
        cols = np.tile(np.arange(4), 5)
        values = rng.random(20)
        array = ops.redimension("m", rows, cols, values,
                                dimension_names=("patient_id", "gene_id"))
        assert array.shape == (5, 4)
        np.testing.assert_allclose(array.to_dense(), values.reshape(5, 4))

    def test_redimension_length_check(self):
        with pytest.raises(ValueError):
            ops.redimension("m", np.arange(3), np.arange(2), np.arange(3))

    def test_regrid_downsamples(self, expression_array):
        array, matrix = expression_array
        regridded = ops.regrid(array, {"patient_id": 5, "gene_id": 3}, function="avg")
        assert regridded.shape == (9, 10)
        # First block's average must match.
        assert regridded.to_dense()[0, 0] == pytest.approx(matrix[:5, :3].mean())
        with pytest.raises(ValueError):
            ops.regrid(array, {"patient_id": 2}, function="median")


class TestArrayLinalg:
    def test_scalapack_roundtrip(self, expression_array):
        array, matrix = expression_array
        dense = linalg.to_scalapack(array)
        np.testing.assert_allclose(dense, matrix)
        back = linalg.from_scalapack("copy", dense, array)
        np.testing.assert_allclose(back.to_dense(), matrix)

    def test_matvec_both_directions(self, expression_array, rng):
        array, matrix = expression_array
        x = rng.random(30)
        y = rng.random(45)
        np.testing.assert_allclose(linalg.matvec(array, x), matrix @ x)
        np.testing.assert_allclose(linalg.matvec(array, y, transpose=True), matrix.T @ y)
        with pytest.raises(ValueError):
            linalg.matvec(array, rng.random(7))

    def test_gram_and_covariance(self, expression_array):
        array, matrix = expression_array
        np.testing.assert_allclose(linalg.gram_matrix(array), matrix.T @ matrix, atol=1e-9)
        np.testing.assert_allclose(
            linalg.covariance(array), np.cov(matrix, rowvar=False), atol=1e-9
        )

    def test_covariance_ddof_check(self, rng):
        array = ChunkedArray.from_dense("a", rng.random((1, 4)), ["i", "j"])
        with pytest.raises(ValueError):
            linalg.covariance(array)

    def test_lanczos_chunked_matches_lapack(self, expression_array):
        array, matrix = expression_array
        result = linalg.lanczos_svd_chunked(array, k=5, seed=0)
        reference = np.linalg.svd(matrix, compute_uv=False)[:5]
        np.testing.assert_allclose(result.singular_values, reference, atol=1e-6)
        assert result.left_vectors.shape == (45, 5)
        assert result.right_vectors.shape == (30, 5)
