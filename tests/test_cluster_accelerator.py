"""Tests for the cluster simulator, distributed linalg and the coprocessor model."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.accelerator import Coprocessor, DeviceSpec, OffloadRuntime, XEON_PHI_5110P
from repro.cluster import (
    BlockCyclicPartitioner,
    Cluster,
    DistributedMatrix,
    HashPartitioner,
    NetworkModel,
    RangePartitioner,
    ScaLAPACK,
    partition_rows,
)


class TestPartitioners:
    def test_hash_partitioner_covers_all_and_is_deterministic(self):
        keys = np.arange(1000)
        partitioner = HashPartitioner(4)
        assignment = partitioner.assign(keys)
        assert set(np.unique(assignment)) == {0, 1, 2, 3}
        np.testing.assert_array_equal(assignment, HashPartitioner(4).assign(keys))

    def test_hash_partitioner_roughly_balanced(self):
        counts = np.bincount(HashPartitioner(4).assign(np.arange(10_000)), minlength=4)
        assert counts.min() > 1500

    def test_range_partitioner_ordered(self):
        keys = np.arange(100)
        assignment = RangePartitioner(4).assign(keys)
        # Partition ids must be non-decreasing for sorted keys.
        assert np.all(np.diff(assignment) >= 0)
        assert assignment[0] == 0 and assignment[-1] == 3

    def test_block_cyclic_layout(self):
        partitioner = BlockCyclicPartitioner(2, block_size=3)
        assignment = partitioner.assign(np.arange(12))
        np.testing.assert_array_equal(assignment, [0, 0, 0, 1, 1, 1, 0, 0, 0, 1, 1, 1])

    def test_partition_rows_reassembles(self, rng):
        matrix = rng.random((20, 4))
        parts = partition_rows(matrix, RangePartitioner(3))
        assert sum(len(p) for p in parts) == 20
        np.testing.assert_allclose(np.vstack(parts), matrix)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)
        with pytest.raises(ValueError):
            BlockCyclicPartitioner(2, block_size=0)

    def test_hash_partitioner_string_keys_stable_across_processes(self):
        """Non-numeric keys must not depend on PYTHONHASHSEED.

        The old fallback used Python's salted ``hash()``: the same keys
        landed on different nodes from one process to the next.  The
        stable vectorised hash must produce one assignment under any seed.
        """
        script = (
            "import json, numpy as np\n"
            "from repro.cluster import HashPartitioner\n"
            "keys = np.array(['alpha', 'beta', 'gamma', 'delta', '', 'alpha2'])\n"
            "print(json.dumps(HashPartitioner(4).assign(keys).tolist()))\n"
        )
        assignments = []
        for hash_seed in ("0", "1", "12345"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            env["PYTHONPATH"] = os.pathsep.join(filter(None, [
                os.path.join(os.path.dirname(__file__), "..", "src"),
                env.get("PYTHONPATH", ""),
            ]))
            output = subprocess.run(
                [sys.executable, "-c", script], env=env,
                capture_output=True, text=True, check=True,
            ).stdout
            assignments.append(json.loads(output))
        assert assignments[0] == assignments[1] == assignments[2]
        # In-process assignment agrees with the subprocess ones too.
        keys = np.array(["alpha", "beta", "gamma", "delta", "", "alpha2"])
        assert HashPartitioner(4).assign(keys).tolist() == assignments[0]

    def test_hash_partitioner_distinct_strings_spread(self):
        keys = np.array([f"patient-{i}" for i in range(1000)])
        counts = np.bincount(HashPartitioner(4).assign(keys), minlength=4)
        assert counts.min() > 150

    def test_range_partitioner_int64_keys_keep_integer_precision(self):
        """Large int64 keys must partition in integer space.

        Adjacent ids above 2**53 collapse onto one float64; the old
        quantile path put boundary keys in the wrong partition.
        """
        base = 2**53
        keys = np.array([base, base + 1, base + 2, base + 3], dtype=np.int64)
        assignment = RangePartitioner(2).assign(keys)
        np.testing.assert_array_equal(assignment, [0, 0, 1, 1])
        # And the assignment is by key order, not input order.
        shuffled = keys[::-1]
        np.testing.assert_array_equal(RangePartitioner(2).assign(shuffled), [1, 1, 0, 0])

    def test_range_partitioner_float_keys_unchanged(self):
        keys = np.linspace(0.0, 1.0, 40)
        assignment = RangePartitioner(4).assign(keys)
        assert np.all(np.diff(assignment) >= 0)
        assert assignment[0] == 0 and assignment[-1] == 3


class TestNetworkModel:
    def test_transfer_counts_real_bytes(self):
        network = NetworkModel()
        payload = np.ones(1000)
        copy, seconds = network.transfer(payload, source=0, destination=1)
        np.testing.assert_array_equal(copy, payload)
        assert network.total_bytes >= payload.nbytes
        assert seconds > network.latency_seconds

    def test_local_transfer_is_free(self):
        network = NetworkModel()
        _copy, seconds = network.transfer(np.ones(10), source=2, destination=2)
        assert seconds == 0.0
        assert network.total_bytes == 0

    def test_broadcast_and_gather(self):
        network = NetworkModel()
        copies, seconds = network.broadcast("hello", source=0, destinations=[1, 2, 3])
        assert copies == ["hello"] * 3
        assert seconds > 0
        gathered, _ = network.gather(["a", "b"], sources=[1, 2], destination=0)
        assert gathered == ["a", "b"]
        assert len(network.transfers) == 5

    def test_all_reduce_cost_scaling(self):
        network = NetworkModel()
        assert network.all_reduce_cost(1_000_000, 1) == 0.0
        two = network.all_reduce_cost(1_000_000, 2)
        four = network.all_reduce_cost(1_000_000, 4)
        assert two > 0 and four > two

    def test_reset(self):
        network = NetworkModel()
        network.transfer(np.ones(10), 0, 1)
        network.reset()
        assert network.total_bytes == 0 and network.total_seconds == 0.0


class TestCluster:
    def test_map_partitions_and_clock(self, rng):
        cluster = Cluster(3)
        partitions = [rng.random((10, 2)) for _ in range(3)]
        result = cluster.map_partitions(partitions, lambda part, node: part.sum())
        assert len(result.outputs) == 3
        assert result.elapsed_seconds >= max(result.per_node_seconds)
        assert cluster.simulated_elapsed_seconds >= result.elapsed_seconds

    def test_partition_count_mismatch(self):
        cluster = Cluster(2)
        with pytest.raises(ValueError):
            cluster.map_partitions([1, 2, 3], lambda part, node: part)
        with pytest.raises(ValueError):
            cluster.run_on_nodes([lambda node: None])

    def test_scatter_gather_charge_network(self):
        cluster = Cluster(3)
        blocks = [np.ones(100) * i for i in range(3)]
        scattered = cluster.scatter(blocks, source=0)
        assert scattered.network_seconds > 0
        gathered = cluster.gather(scattered.outputs, destination=0)
        np.testing.assert_allclose(gathered.outputs[2], blocks[2])
        assert cluster.network.total_bytes > 0

    def test_single_node_has_no_network_cost(self):
        cluster = Cluster(1)
        cluster.scatter([np.ones(10)], source=0)
        assert cluster.network.total_bytes == 0

    def test_reset_clock(self):
        cluster = Cluster(2)
        cluster.scatter([np.ones(10), np.ones(10)], source=0)
        cluster.reset_clock()
        assert cluster.simulated_elapsed_seconds == 0.0
        assert cluster.network.total_bytes == 0

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Cluster(0)

    def test_invalid_executor(self):
        with pytest.raises(ValueError):
            Cluster(2, executor="mpi")

    def test_threaded_and_sequential_executors_agree(self, rng):
        partitions = [rng.random((200, 8)) for _ in range(4)]
        threaded = Cluster(4, executor="threads")
        sequential = Cluster(4, executor="sequential")
        a = threaded.map_partitions(partitions, lambda part, node: part.sum(axis=0))
        b = sequential.map_partitions(partitions, lambda part, node: part.sum(axis=0))
        for left, right in zip(a.outputs, b.outputs, strict=True):
            np.testing.assert_array_equal(left, right)
        # Both record a real wall clock and per-node compute for every node.
        assert a.wall_seconds > 0 and b.wall_seconds > 0
        assert len(a.per_node_seconds) == len(b.per_node_seconds) == 4

    def test_threaded_executor_preserves_node_order_and_timings(self, rng):
        cluster = Cluster(3, executor="threads")
        result = cluster.run_on_nodes([
            (lambda node, i=i: (i, np.arange(i + 1).sum())) for i in range(3)
        ])
        assert [output[0] for output in result.outputs] == [0, 1, 2]
        assert all(t.compute_seconds >= 0 for t in cluster.node_timings)
        assert cluster.simulated_elapsed_seconds >= result.elapsed_seconds


class TestScaLAPACK:
    @pytest.fixture(params=[1, 2, 4])
    def cluster(self, request) -> Cluster:
        return Cluster(request.param)

    def test_distributed_covariance(self, cluster, rng):
        matrix = rng.random((60, 12))
        distributed = DistributedMatrix.from_dense(cluster, matrix)
        assert distributed.shape == matrix.shape
        cov = ScaLAPACK(cluster).covariance(distributed)
        np.testing.assert_allclose(cov, np.cov(matrix, rowvar=False), atol=1e-10)

    def test_distributed_regression(self, cluster, rng):
        features = rng.random((80, 5))
        beta_true = np.arange(1.0, 6.0)
        target = features @ beta_true + 2.0 + 0.01 * rng.standard_normal(80)
        fit = ScaLAPACK(cluster).linear_regression(
            DistributedMatrix.from_dense(cluster, features),
            DistributedMatrix.from_dense(cluster, target.reshape(-1, 1)),
        )
        np.testing.assert_allclose(fit.coefficients, beta_true, atol=0.05)
        assert fit.r_squared > 0.99

    def test_distributed_matvec_and_svd(self, cluster, rng):
        matrix = rng.random((50, 20))
        distributed = DistributedMatrix.from_dense(cluster, matrix)
        scalapack = ScaLAPACK(cluster)
        x = rng.random(20)
        np.testing.assert_allclose(scalapack.matvec(distributed, x), matrix @ x, atol=1e-10)
        y = rng.random(50)
        np.testing.assert_allclose(
            scalapack.matvec(distributed, y, transpose=True), matrix.T @ y, atol=1e-10
        )
        result = scalapack.lanczos_svd(distributed, k=4, seed=0)
        np.testing.assert_allclose(
            result.singular_values, np.linalg.svd(matrix, compute_uv=False)[:4], atol=1e-6
        )

    def test_distributed_gemm_and_collect(self, cluster, rng):
        matrix = rng.random((30, 8))
        right = rng.random((8, 3))
        distributed = DistributedMatrix.from_dense(cluster, matrix)
        product = ScaLAPACK(cluster).gemm(distributed, right)
        np.testing.assert_allclose(product.collect(), matrix @ right, atol=1e-10)

    def test_multi_node_charges_network(self, rng):
        cluster = Cluster(4)
        matrix = rng.random((40, 10))
        distributed = DistributedMatrix.from_dense(cluster, matrix)
        ScaLAPACK(cluster).covariance(distributed)
        assert cluster.network.total_bytes > 0
        assert cluster.simulated_elapsed_seconds > 0

    def test_regression_validation(self, rng):
        cluster = Cluster(2)
        features = DistributedMatrix.from_dense(cluster, rng.random((10, 2)))
        bad_target = DistributedMatrix.from_dense(cluster, rng.random((10, 2)))
        with pytest.raises(ValueError):
            ScaLAPACK(cluster).linear_regression(features, bad_target)


class TestCoprocessor:
    def test_offload_timing_breakdown(self, rng):
        device = Coprocessor()
        matrix = rng.random((200, 50))
        result = device.offload(lambda m: np.cov(m, rowvar=False), matrix,
                                offloadable_fraction=0.9)
        assert result.device_kernel_seconds < result.host_kernel_seconds
        assert result.transfer_seconds > 0
        assert result.bytes_transferred >= matrix.nbytes
        assert result.fits_in_device_memory
        assert device.total_device_seconds == pytest.approx(result.device_total_seconds)

    def test_small_problems_dominated_by_transfer(self, rng):
        device = Coprocessor()
        tiny = rng.random((5, 5))
        result = device.offload(lambda m: m.sum(), tiny)
        # Transfer latency swamps the microsecond kernel: no speedup.
        assert result.speedup < 1.0

    def test_memory_oversubscription_penalty(self, rng):
        spec = DeviceSpec(
            name="tiny-device", memory_bytes=1_000,
            transfer_bandwidth_bytes_per_second=1e9,
            transfer_latency_seconds=0.0, compute_speedup=4.0,
            oversubscription_penalty=3.0,
        )
        device = Coprocessor(spec=spec)
        big = rng.random((100, 100))
        result = device.offload(lambda m: m @ m.T, big, offloadable_fraction=1.0)
        assert not result.fits_in_device_memory
        assert result.device_kernel_seconds == pytest.approx(
            result.host_kernel_seconds / 4.0 * 3.0, rel=0.2
        )

    def test_invalid_fraction(self, rng):
        with pytest.raises(ValueError):
            Coprocessor().offload(lambda m: m, rng.random(4), offloadable_fraction=1.5)

    def test_paper_device_spec(self):
        assert XEON_PHI_5110P.memory_bytes == 8 * 1024**3
        assert XEON_PHI_5110P.compute_speedup > 1.0

    def test_runtime_policy(self, rng):
        runtime = OffloadRuntime()
        assert not runtime.should_offload("regression")
        assert runtime.should_offload("covariance")
        host_result = runtime.run("regression", lambda m: m.mean(), rng.random(100))
        assert host_result.transfer_seconds == 0.0
        assert host_result.device_total_seconds == host_result.host_kernel_seconds
        offloaded = runtime.run("covariance", lambda m: np.cov(m, rowvar=False), rng.random((50, 10)))
        assert offloaded.transfer_seconds > 0
        assert len(runtime.device.offloads) == 2
