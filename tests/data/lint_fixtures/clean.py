# Fixture: a file exercising near-miss shapes of every rule; the linter
# must report nothing here (no `# expect:` headers).
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Stats:
    row_count: int
    distinct: int | None = None


def seeded(seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 10, size=5)


def typed_handler(mapping, key):
    try:
        return mapping[key]
    except (KeyError, IndexError):
        return None


def lambda_elsewhere(values):
    # Lambdas are fine outside predicate methods.
    return sorted(values, key=lambda pair: pair[1])


def decode_outside_fast_path(encoding):
    # This module is not on the fast-path list; decode() is unrestricted.
    return encoding.decode()
