# Fixture: decode-in-fast-path fires on unblessed decompression in a
# module whose path matches the colstore fast-path list (this fixture
# shadows that suffix deliberately), and spares pragma'd fallbacks.
# expect: decode-in-fast-path


def bad_fallback(encoding, predicate):
    return predicate(encoding.decode())


def blessed_fallback(encoding, predicate):
    values = encoding.decode()  # decode-ok: generic predicate has no fast path
    return predicate(values)


def not_a_decompression(codec, payload):
    # decode() with arguments is some other API, not the encoding protocol.
    return codec.decode(payload)
