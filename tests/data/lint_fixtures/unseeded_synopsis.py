# Fixture: unseeded-rng fires on a synopsis builder that scores rows
# without an explicit seed — a cached sample selection must reproduce
# bit-identically across runs, so only default_rng(seed) is admitted.
# expect: unseeded-rng
# expect: unseeded-rng
import numpy as np


def bad_uniform_synopsis(table, fraction):
    scores = np.random.default_rng().random(table.row_count)
    n_keep = max(1, round(fraction * table.row_count))
    return np.sort(np.argsort(scores, kind="stable")[:n_keep])


def bad_stratified_synopsis(table, inverse, fraction):
    scores = np.random.random(table.row_count)
    order = np.lexsort((scores, inverse))
    return order[: max(1, round(fraction * table.row_count))]


def blessed_synopsis(table, fraction, seed):
    scores = np.random.default_rng(seed).random(table.row_count)
    n_keep = max(1, round(fraction * table.row_count))
    return np.sort(np.argsort(scores, kind="stable")[:n_keep])
