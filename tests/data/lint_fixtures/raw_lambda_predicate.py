# Fixture: raw-lambda-predicate fires on lambdas handed to predicate
# methods, and spares blessed DeprecationWarning shims and expressions.
# expect: raw-lambda-predicate
# expect: raw-lambda-predicate
import warnings


def bad(query):
    return query.where(lambda row: row["age"] > 40)


def also_bad(frame):
    return frame.subset(predicate=lambda f: f["age"] > 40)


def blessed_expression(query, col):
    return query.where(col("age") > 40)


def blessed_shim(query):
    # A deprecated-callable shim: warns, so lambdas inside are tolerated.
    warnings.warn("deprecated", DeprecationWarning, stacklevel=2)
    return query.where(lambda row: row["age"] > 40)
