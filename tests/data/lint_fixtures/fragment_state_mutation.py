# Fixture: fragment-state-mutation fires on nonlocal/global rebinding and
# self-attribute mutation inside per-node worker closures; pure workers
# and driver-side mutation pass.
# expect: fragment-state-mutation
# expect: fragment-state-mutation
# expect: fragment-state-mutation
import numpy as np


def bad_nonlocal_accumulator(cluster, partitions):
    total = 0

    def work(node_id):
        nonlocal total
        total += len(partitions[node_id])  # races across worker threads
        return total

    return cluster.run_on_nodes([work])


class BadDriver:
    def run(self, table, cluster):
        def partial(node_id, local_rows):
            self.seen = node_id  # worker thread mutating driver state
            return np.sum(local_rows)

        return run_shared_plan(self.plan, table, cluster, on_fragment=partial)


COUNTER = 0


def bad_global(cluster):
    def work(node_id):
        global COUNTER
        return node_id

    return cluster.run_on_nodes([work])


def blessed_pure_worker(cluster, partitions):
    def work(node_id):
        # Pure: reads the closure, returns the value — reduced on the driver.
        return len(partitions[node_id])

    results = cluster.run_on_nodes([work])
    total = sum(results.outputs)  # driver-side accumulation is fine
    return total


def run_shared_plan(plan, table, cluster, on_fragment=None):
    return on_fragment
