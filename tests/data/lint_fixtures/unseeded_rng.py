# Fixture: unseeded-rng fires on legacy global np.random calls and on
# default_rng() without a seed; seeded generators pass.
# expect: unseeded-rng
# expect: unseeded-rng
# expect: unseeded-rng
import numpy as np
from numpy.random import default_rng


def bad_legacy(n):
    return np.random.rand(n)


def bad_unseeded():
    return np.random.default_rng()


def bad_unseeded_bare():
    return default_rng()


def blessed(seed):
    rng = np.random.default_rng(seed)
    return rng.normal(size=4)


def blessed_annotation(rng: np.random.Generator) -> float:
    return float(rng.random())
