# Fixture: bare-except fires on `except:` and spares typed handlers.
# expect: bare-except


def bad(mapping, key):
    try:
        return mapping[key]
    except:  # noqa: E722 — the fixture under test
        return None


def blessed(mapping, key):
    try:
        return mapping[key]
    except KeyError:
        return None
