# Fixture: plan-dataclass-eq fires on dataclasses with Expression-typed
# fields missing eq=False (including container and string annotations);
# eq=False declarations and non-Expression fields pass.
# expect: plan-dataclass-eq
# expect: plan-dataclass-eq
from dataclasses import dataclass


class Expression:
    def __eq__(self, other):  # builds an AST node, never a bool
        return self


class BoundExpression:
    pass


@dataclass(frozen=True)
class BadFilter:
    predicate: Expression


@dataclass
class BadStage:
    predicates: "list[Expression]"


@dataclass(frozen=True, eq=False)
class BlessedFilter:
    predicate: Expression


@dataclass(frozen=True)
class BlessedOtherField:
    # BoundExpression has ordinary equality; only Expression is the trap.
    bound: BoundExpression
    name: str
