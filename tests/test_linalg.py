"""Tests for the numerical kernels (QR, covariance, Lanczos, biclustering, Wilcoxon)."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.linalg import (
    cheng_church,
    covariance_matrix,
    correlation_matrix,
    enrichment_analysis,
    householder_qr,
    lanczos_svd,
    linear_regression,
    lstsq_qr,
    rank_sum_test,
    top_covariant_pairs,
)
from repro.linalg import blas, naive
from repro.linalg.biclustering import mean_squared_residue
from repro.linalg.lanczos import lanczos_eigsh


class TestHouseholderQR:
    def test_reconstruction(self, rng):
        matrix = rng.standard_normal((20, 8))
        q, r = householder_qr(matrix)
        np.testing.assert_allclose(q @ r, matrix, atol=1e-10)

    def test_q_orthonormal_r_triangular(self, rng):
        matrix = rng.standard_normal((15, 6))
        q, r = householder_qr(matrix)
        np.testing.assert_allclose(q.T @ q, np.eye(6), atol=1e-10)
        np.testing.assert_allclose(r, np.triu(r))

    def test_rejects_wide_matrix(self, rng):
        with pytest.raises(ValueError):
            householder_qr(rng.standard_normal((3, 5)))

    def test_rank_deficient_matrix(self):
        matrix = np.column_stack([np.ones(10), np.ones(10) * 2, np.arange(10)])
        q, r = householder_qr(matrix)
        np.testing.assert_allclose(q @ r, matrix, atol=1e-10)

    def test_matches_lapack_lstsq(self, rng):
        design = rng.standard_normal((30, 5))
        target = rng.standard_normal(30)
        ours, _ = lstsq_qr(design, target, method="householder")
        reference = np.linalg.lstsq(design, target, rcond=None)[0]
        np.testing.assert_allclose(ours, reference, atol=1e-8)

    def test_underdetermined_minimum_norm(self, rng):
        design = rng.standard_normal((4, 9))
        target = rng.standard_normal(4)
        for method in ("householder", "lapack"):
            beta, _ = lstsq_qr(design, target, method=method)
            np.testing.assert_allclose(design @ beta, target, atol=1e-8)
            reference = np.linalg.lstsq(design, target, rcond=None)[0]
            np.testing.assert_allclose(beta, reference, atol=1e-8)

    def test_unknown_method_rejected(self, rng):
        with pytest.raises(ValueError, match="unknown QR method"):
            lstsq_qr(rng.random((4, 2)), rng.random(4), method="cholesky")


class TestLinearRegression:
    def test_recovers_known_coefficients(self, rng):
        features = rng.standard_normal((200, 4))
        true_beta = np.array([1.5, -2.0, 0.5, 3.0])
        target = features @ true_beta + 2.0 + 0.01 * rng.standard_normal(200)
        for method in ("householder", "lapack"):
            fit = linear_regression(features, target, method=method)
            np.testing.assert_allclose(fit.coefficients, true_beta, atol=0.05)
            assert fit.intercept == pytest.approx(2.0, abs=0.05)
            assert fit.r_squared > 0.99

    def test_no_intercept(self, rng):
        features = rng.standard_normal((100, 3))
        target = features @ np.array([1.0, 2.0, 3.0])
        fit = linear_regression(features, target, fit_intercept=False)
        assert fit.intercept == 0.0
        np.testing.assert_allclose(fit.coefficients, [1.0, 2.0, 3.0], atol=1e-8)

    def test_predict(self, rng):
        features = rng.standard_normal((50, 2))
        target = features @ np.array([1.0, -1.0]) + 0.5
        fit = linear_regression(features, target)
        np.testing.assert_allclose(fit.predict(features), target, atol=1e-8)

    def test_one_dimensional_features(self, rng):
        x = rng.standard_normal(60)
        fit = linear_regression(x, 3 * x + 1)
        assert fit.coefficients[0] == pytest.approx(3.0, abs=1e-8)

    def test_errors(self, rng):
        with pytest.raises(ValueError):
            linear_regression(rng.random((5, 2)), rng.random(6))
        with pytest.raises(ValueError):
            linear_regression(np.empty((0, 2)), np.empty(0))

    def test_naive_matches_fast(self, rng):
        features = rng.standard_normal((40, 3))
        target = rng.standard_normal(40)
        fast = linear_regression(features, target)
        slow = naive.linear_regression(features, target)
        assert slow[0] == pytest.approx(fast.intercept, abs=1e-6)
        np.testing.assert_allclose(slow[1:], fast.coefficients, atol=1e-6)


class TestCovariance:
    def test_matches_numpy(self, rng):
        matrix = rng.standard_normal((30, 12))
        np.testing.assert_allclose(
            covariance_matrix(matrix), np.cov(matrix, rowvar=False), atol=1e-12
        )

    def test_symmetric_and_psd(self, rng):
        matrix = rng.standard_normal((25, 8))
        cov = covariance_matrix(matrix)
        np.testing.assert_array_equal(cov, cov.T)
        eigenvalues = np.linalg.eigvalsh(cov)
        assert eigenvalues.min() > -1e-10

    def test_errors(self, rng):
        with pytest.raises(ValueError):
            covariance_matrix(np.empty((0, 3)))
        with pytest.raises(ValueError):
            covariance_matrix(rng.random((1, 3)), ddof=1)
        with pytest.raises(ValueError):
            covariance_matrix(rng.random(5))

    def test_correlation_bounds_and_constant_column(self, rng):
        matrix = rng.standard_normal((40, 5))
        matrix[:, 2] = 7.0  # zero-variance column
        corr = correlation_matrix(matrix)
        assert np.all(np.abs(corr) <= 1 + 1e-12)
        assert corr[2, 2] == 0.0
        assert np.all(corr[2, :3:2] == 0.0)

    def test_naive_matches_fast(self, rng):
        matrix = rng.standard_normal((15, 6))
        np.testing.assert_allclose(
            naive.covariance_matrix(matrix), covariance_matrix(matrix), atol=1e-10
        )

    def test_top_pairs_fraction_and_order(self, rng):
        matrix = rng.standard_normal((50, 10))
        cov = covariance_matrix(matrix)
        gene_a, gene_b, values = top_covariant_pairs(cov, fraction=0.2)
        assert len(gene_a) == int(np.ceil(0.2 * 45))
        assert np.all(gene_a < gene_b)
        assert np.all(np.diff(np.abs(values)) <= 1e-12)

    def test_top_pairs_validation(self, rng):
        cov = covariance_matrix(rng.random((10, 4)))
        with pytest.raises(ValueError):
            top_covariant_pairs(cov, fraction=0.0)
        with pytest.raises(ValueError):
            top_covariant_pairs(rng.random((3, 4)))
        a, b, v = top_covariant_pairs(np.ones((1, 1)))
        assert len(a) == 0


class TestLanczos:
    def test_matches_lapack_singular_values(self, rng):
        matrix = rng.standard_normal((60, 40))
        result = lanczos_svd(matrix, k=10, seed=1)
        reference = np.linalg.svd(matrix, compute_uv=False)[:10]
        np.testing.assert_allclose(result.singular_values, reference, atol=1e-6)

    def test_singular_vectors_reconstruct(self, rng):
        # A genuinely low-rank matrix should be reconstructed exactly.
        left = rng.standard_normal((50, 5))
        right = rng.standard_normal((5, 30))
        matrix = left @ right
        result = lanczos_svd(matrix, k=5, seed=0)
        np.testing.assert_allclose(result.reconstruct(), matrix, atol=1e-6)

    def test_orthonormal_vectors(self, rng):
        matrix = rng.standard_normal((40, 25))
        result = lanczos_svd(matrix, k=6, seed=0)
        np.testing.assert_allclose(
            result.right_vectors.T @ result.right_vectors, np.eye(6), atol=1e-6
        )

    def test_wide_matrix_uses_smaller_gram(self, rng):
        matrix = rng.standard_normal((20, 80))
        result = lanczos_svd(matrix, k=5, seed=0)
        reference = np.linalg.svd(matrix, compute_uv=False)[:5]
        np.testing.assert_allclose(result.singular_values, reference, atol=1e-6)

    def test_k_clipped_to_dimensions(self, rng):
        matrix = rng.standard_normal((6, 4))
        result = lanczos_svd(matrix, k=50)
        assert len(result.singular_values) == 4

    def test_eigsh_on_diagonal_operator(self):
        diagonal = np.arange(1.0, 21.0)
        eigenvalues, vectors = lanczos_eigsh(lambda v: diagonal * v, dimension=20, k=3, seed=2)
        np.testing.assert_allclose(eigenvalues, [20.0, 19.0, 18.0], atol=1e-8)
        assert vectors.shape == (20, 3)

    def test_invalid_inputs(self, rng):
        with pytest.raises(ValueError):
            lanczos_svd(rng.random(5), k=2)
        with pytest.raises(ValueError):
            lanczos_svd(np.empty((0, 4)), k=2)
        with pytest.raises(ValueError):
            lanczos_eigsh(lambda v: v, dimension=10, k=0)

    def test_blas_truncated_svd_agrees(self, rng):
        matrix = rng.standard_normal((30, 20))
        _u, s, _v = blas.truncated_svd(matrix, k=5)
        result = lanczos_svd(matrix, k=5)
        np.testing.assert_allclose(result.singular_values, s, atol=1e-6)


class TestBiclustering:
    def test_msr_zero_for_additive_block(self):
        rows = np.arange(5).reshape(-1, 1)
        cols = np.arange(4).reshape(1, -1)
        block = rows + cols  # perfectly additive
        assert mean_squared_residue(block) == pytest.approx(0.0, abs=1e-12)

    def test_msr_positive_for_noise(self, rng):
        assert mean_squared_residue(rng.standard_normal((10, 10))) > 0.1

    def test_finds_planted_bicluster(self, rng):
        # High-variance background with a flat (coherent) planted block: the
        # same shape the generator plants and Q3 looks for.
        matrix = rng.standard_normal((60, 40)) * 4.0
        rows = np.arange(10, 25)
        cols = np.arange(5, 20)
        matrix[np.ix_(rows, cols)] = 0.05 * rng.standard_normal((15, 15))
        result = cheng_church(matrix, n_biclusters=1, delta=0.1, seed=0)
        found = result.biclusters[0]
        row_overlap = len(np.intersect1d(found.rows, rows)) / len(rows)
        col_overlap = len(np.intersect1d(found.columns, cols)) / len(cols)
        assert row_overlap >= 0.75
        assert col_overlap >= 0.75
        assert found.msr < mean_squared_residue(matrix)

    def test_requested_number_of_biclusters(self, rng):
        matrix = rng.standard_normal((30, 20))
        result = cheng_church(matrix, n_biclusters=3, seed=1)
        assert len(result) == 3
        for bicluster in result:
            assert bicluster.shape[0] >= 2 and bicluster.shape[1] >= 2

    def test_membership_matrix_labels(self, rng):
        matrix = rng.standard_normal((20, 15))
        result = cheng_church(matrix, n_biclusters=2, seed=0)
        labels = result.membership_matrix(matrix.shape)
        assert labels.shape == matrix.shape
        assert labels.max() <= 2

    def test_small_matrix_returns_empty(self):
        result = cheng_church(np.ones((1, 1)), n_biclusters=2)
        assert len(result) == 0

    def test_invalid_alpha(self, rng):
        with pytest.raises(ValueError):
            cheng_church(rng.random((10, 10)), alpha=0.5)


class TestWilcoxon:
    def test_matches_scipy_without_ties(self, rng):
        first = rng.standard_normal(30)
        second = rng.standard_normal(40) + 0.5
        ours = rank_sum_test(first, second)
        reference = scipy_stats.mannwhitneyu(first, second, alternative="two-sided")
        assert ours.statistic == pytest.approx(reference.statistic)
        assert ours.p_value == pytest.approx(reference.pvalue, rel=1e-6)

    def test_matches_scipy_with_ties(self, rng):
        first = rng.integers(0, 5, size=25).astype(float)
        second = rng.integers(0, 5, size=35).astype(float)
        ours = rank_sum_test(first, second)
        reference = scipy_stats.mannwhitneyu(
            first, second, alternative="two-sided", method="asymptotic"
        )
        assert ours.p_value == pytest.approx(reference.pvalue, rel=1e-6)

    def test_identical_samples_p_one(self):
        result = rank_sum_test(np.ones(10), np.ones(12))
        assert result.p_value == 1.0
        assert result.z_score == 0.0

    def test_clear_shift_is_significant(self, rng):
        first = rng.standard_normal(50) + 3.0
        second = rng.standard_normal(50)
        result = rank_sum_test(first, second)
        assert result.p_value < 1e-6
        assert result.z_score > 0

    def test_empty_sample_raises(self):
        with pytest.raises(ValueError):
            rank_sum_test(np.empty(0), np.ones(5))

    def test_naive_matches_reference(self, rng):
        first = rng.standard_normal(20)
        second = rng.standard_normal(25) + 1.0
        assert naive.wilcoxon_rank_sum(first, second) == pytest.approx(
            rank_sum_test(first, second).p_value, rel=1e-9
        )

    def test_enrichment_finds_planted_term(self, rng):
        n_genes, n_terms = 200, 10
        scores = rng.standard_normal(n_genes)
        membership = (rng.random((n_genes, n_terms)) < 0.1).astype(np.int8)
        # Term 3's members get very high scores.
        members = rng.choice(n_genes, size=25, replace=False)
        membership[:, 3] = 0
        membership[members, 3] = 1
        scores[members] += 4.0
        result = enrichment_analysis(scores, membership)
        assert 3 in set(result.significant_terms().tolist())
        assert result.p_values[3] < 0.001
        assert result.z_scores[3] > 0

    def test_enrichment_validation(self, rng):
        with pytest.raises(ValueError):
            enrichment_analysis(rng.random(10), rng.integers(0, 2, (11, 3)))
        with pytest.raises(ValueError):
            enrichment_analysis(rng.random(10), rng.integers(0, 2, (10,)))
        with pytest.raises(ValueError):
            enrichment_analysis(rng.random(10), rng.integers(0, 2, (10, 3)), go_ids=np.arange(2))

    def test_enrichment_full_or_empty_terms_get_p_one(self, rng):
        scores = rng.random(20)
        membership = np.zeros((20, 2), dtype=np.int8)
        membership[:, 1] = 1  # every gene is a member
        result = enrichment_analysis(scores, membership)
        np.testing.assert_array_equal(result.p_values, [1.0, 1.0])
        assert result.as_rows()[0][3] is False


class TestNaiveKernels:
    def test_matmul_matches_numpy(self, rng):
        a = rng.random((6, 4))
        b = rng.random((4, 5))
        np.testing.assert_allclose(naive.matmul(a, b), a @ b, atol=1e-12)

    def test_matmul_dimension_check(self, rng):
        with pytest.raises(ValueError):
            naive.matmul(rng.random((3, 2)), rng.random((3, 2)))

    def test_transpose(self, rng):
        a = rng.random((3, 5))
        np.testing.assert_array_equal(naive.transpose(a), a.T)

    def test_power_iteration_svd(self, rng):
        matrix = rng.random((15, 8))
        values = naive.power_iteration_svd(matrix, k=3, n_iterations=100, seed=0)
        reference = np.linalg.svd(matrix, compute_uv=False)[:3]
        np.testing.assert_allclose(values, reference, rtol=1e-3)

    def test_gaussian_solve_singular_system(self):
        # A singular system should not blow up; free variables go to zero.
        solution = naive._gaussian_solve([[1.0, 1.0], [2.0, 2.0]], [3.0, 6.0])
        assert len(solution) == 2
        assert np.isfinite(solution).all()
