"""Tests for the column-store engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.colstore import (
    ColumnQuery,
    ColumnStore,
    ColumnTable,
    ColumnVector,
    DeltaEncoding,
    DictionaryEncoding,
    PlainEncoding,
    RunLengthEncoding,
    best_encoding,
)
from repro.colstore.compression import encoding_sizes
from repro.colstore.query import (
    _direct_address_positions,
    _sorted_match_positions,
    merge_join_positions,
)
from repro.colstore.udf import UdfHost


class TestEncodings:
    def test_rle_roundtrip_and_compression(self):
        values = np.repeat(np.array([1, 2, 3, 2]), 500)
        encoding = RunLengthEncoding()
        encoding.encode(values)
        np.testing.assert_array_equal(encoding.decode(), values)
        assert encoding.run_count == 4
        assert encoding.encoded_bytes() < values.nbytes / 10

    def test_dictionary_roundtrip_and_narrow_codes(self):
        values = np.tile(np.arange(10), 300)
        encoding = DictionaryEncoding()
        encoding.encode(values)
        np.testing.assert_array_equal(encoding.decode(), values)
        assert encoding.cardinality == 10
        assert encoding.encoded_bytes() < values.nbytes / 4

    def test_delta_roundtrip_monotone(self):
        values = np.cumsum(np.random.default_rng(0).integers(1, 100, 1000))
        encoding = DeltaEncoding()
        encoding.encode(values)
        np.testing.assert_array_equal(encoding.decode(), values)
        assert encoding.encoded_bytes() < values.nbytes

    def test_plain_roundtrip(self):
        values = np.random.default_rng(0).random(100)
        encoding = PlainEncoding()
        encoding.encode(values)
        np.testing.assert_array_equal(encoding.decode(), values)

    def test_empty_columns(self):
        for encoding in (PlainEncoding(), RunLengthEncoding(), DeltaEncoding()):
            encoding.encode(np.empty(0, dtype=np.int64))
            assert len(encoding.decode()) == 0

    def test_best_encoding_choices(self):
        constant = np.zeros(10_000, dtype=np.int64)
        assert best_encoding(constant).name == "rle"
        monotone = np.arange(10_000, dtype=np.int64)
        assert best_encoding(monotone).name in ("delta", "rle")
        random_floats = np.random.default_rng(0).random(10_000)
        assert best_encoding(random_floats).name == "plain"

    def test_best_encoding_roundtrips(self, rng):
        for values in (
            rng.integers(0, 3, 5000),
            rng.integers(0, 100_000, 5000),
            rng.random(2000),
            np.repeat(rng.random(5), 1000),
        ):
            encoding = best_encoding(values)
            np.testing.assert_array_equal(encoding.decode(), values)

    def test_best_encoding_matches_brute_force(self, rng):
        """The stats-driven picker must agree with encode-all-and-compare."""
        samples = [
            np.zeros(1, dtype=np.int64),
            np.zeros(5000, dtype=np.int64),
            np.arange(5000, dtype=np.int64),
            rng.integers(0, 3, 5000),
            rng.integers(0, 300, 5000),
            rng.integers(0, 100_000, 5000),
            np.sort(rng.integers(0, 40, 5000)),
            rng.random(2000),
            np.repeat(rng.random(5), 1000),
            rng.integers(0, 2, 500).astype(bool),
        ]
        for values in samples:
            candidates = [PlainEncoding()]
            if values.size:
                if np.issubdtype(values.dtype, np.integer) or np.issubdtype(values.dtype, np.bool_):
                    candidates.extend(
                        [RunLengthEncoding(), DictionaryEncoding(), DeltaEncoding()]
                    )
                else:
                    candidates.append(RunLengthEncoding())
                    if len(np.unique(values[: min(len(values), 10_000)])) <= 4096:
                        candidates.append(DictionaryEncoding())
            best = best_size = None
            for candidate in candidates:
                candidate.encode(values)
                size = candidate.encoded_bytes()
                if best is None or size < best_size:
                    best, best_size = candidate, size
            chosen = best_encoding(values)
            assert chosen.name == best.name, values[:10]
            assert chosen.encoded_bytes() == best.encoded_bytes()

    def test_best_encoding_nan_floats_can_pick_dictionary(self):
        values = np.where(np.arange(10_000) % 2 == 0, np.nan, 1.5)
        chosen = best_encoding(values)
        brute = DictionaryEncoding()
        brute.encode(values)
        assert chosen.encoded_bytes() <= brute.encoded_bytes()
        np.testing.assert_array_equal(chosen.decode(), values)

    def test_encoding_sizes_are_exact(self, rng):
        values = rng.integers(0, 300, 5000)
        sizes = encoding_sizes(values)
        for name, encoding in (
            ("plain", PlainEncoding()),
            ("rle", RunLengthEncoding()),
            ("dictionary", DictionaryEncoding()),
            ("delta", DeltaEncoding()),
        ):
            if name in sizes:
                encoding.encode(values)
                assert sizes[name] == encoding.encoded_bytes(), name


class TestCompressedFastPaths:
    def test_rle_take_hits_run_boundaries(self):
        values = np.repeat(np.array([7, 3, 3, 9]), [4, 1, 2, 3])
        encoding = RunLengthEncoding()
        encoding.encode(values)
        indices = np.array([0, 3, 4, 5, 6, 7, 9, -1])
        np.testing.assert_array_equal(encoding.take(indices), values[indices])
        with pytest.raises(IndexError):
            encoding.take(np.array([len(values)]))

    def test_delta_take_window(self):
        values = np.cumsum(np.arange(1, 50, dtype=np.int64))
        encoding = DeltaEncoding()
        encoding.encode(values)
        indices = np.array([10, 12, 17, 10, -1])
        np.testing.assert_array_equal(encoding.take(indices), values[indices])
        assert encoding.take(np.empty(0, dtype=np.int64)).dtype == values.dtype
        with pytest.raises(IndexError):
            encoding.take(np.array([len(values)]))

    def test_dictionary_filter_range_and_scattered(self):
        values = np.tile(np.arange(10), 100)
        encoding = DictionaryEncoding()
        encoding.encode(values)
        for predicate in (
            lambda v: v < 4,          # prefix of the sorted dictionary
            lambda v: v >= 7,         # suffix
            lambda v: v % 2 == 0,     # scattered verdicts
            lambda v: v < -1,         # nothing
            lambda v: v < 99,         # everything
        ):
            np.testing.assert_array_equal(
                encoding.filter_mask(predicate), predicate(values)
            )

    def test_filter_mask_shape_check_on_distinct_values(self):
        values = np.tile(np.arange(10), 100)
        encoding = DictionaryEncoding()
        encoding.encode(values)
        with pytest.raises(ValueError):
            encoding.filter_mask(lambda v: np.array([True]))

    def test_vector_take_before_and_after_decode(self, rng):
        values = np.sort(rng.integers(0, 6, 500))
        column = ColumnVector("x", values)
        indices = np.array([0, 250, 499])
        np.testing.assert_array_equal(column.take(indices), values[indices])  # encoded
        column.values()  # populate the decode cache
        np.testing.assert_array_equal(column.take(indices), values[indices])  # cached


class TestMergeJoinPositions:
    def _reference(self, left, right):
        pairs = [
            (i, j)
            for j, rk in enumerate(right.tolist())
            for i, lk in enumerate(left.tolist())
            if lk == rk
        ]
        return pairs

    def test_direct_and_sorted_paths_agree(self, rng):
        left = rng.integers(0, 40, 120).astype(np.int64)
        right = rng.integers(0, 40, 300).astype(np.int64)
        direct = _direct_address_positions(left, right, int(left.min()),
                                           int(left.max()) - int(left.min()) + 1)
        sorted_path = _sorted_match_positions(left, right)
        np.testing.assert_array_equal(direct[0], sorted_path[0])
        np.testing.assert_array_equal(direct[1], sorted_path[1])

    def test_matches_quadratic_reference(self, rng):
        left = rng.integers(0, 8, 25).astype(np.int64)
        right = rng.integers(0, 8, 40).astype(np.int64)
        left_positions, right_positions = merge_join_positions(left, right)
        assert sorted(zip(left_positions.tolist(), right_positions.tolist(), strict=True)) == sorted(
            self._reference(left, right)
        )

    def test_float_keys_use_sort_merge(self, rng):
        left = rng.choice(np.array([0.5, 1.5, 2.5]), 20)
        right = rng.choice(np.array([0.5, 1.5, 9.5]), 30)
        left_positions, right_positions = merge_join_positions(left, right)
        np.testing.assert_array_equal(left[left_positions], right[right_positions])
        assert sorted(zip(left_positions.tolist(), right_positions.tolist(), strict=True)) == sorted(
            self._reference(left, right)
        )

    def test_probe_keys_outside_build_range(self):
        left = np.array([5, 6, 7], dtype=np.int64)
        right = np.array([1, 5, 900, 7, -3], dtype=np.int64)
        left_positions, right_positions = merge_join_positions(left, right)
        np.testing.assert_array_equal(left[left_positions], [5, 7])
        np.testing.assert_array_equal(right_positions, [1, 3])

    def test_uint64_keys_do_not_wrap(self):
        left = np.array([-5, 1, 2], dtype=np.int64)
        right = np.array([2**64 - 5, 1], dtype=np.uint64)
        left_positions, right_positions = merge_join_positions(left, right)
        # 2**64 - 5 must not wrap to -5 and fabricate a match.
        np.testing.assert_array_equal(left[left_positions], [1])
        np.testing.assert_array_equal(right_positions, [1])

    def test_empty_sides(self):
        empty = np.empty(0, dtype=np.int64)
        keys = np.array([1, 2], dtype=np.int64)
        for left, right in ((empty, keys), (keys, empty), (empty, empty)):
            left_positions, right_positions = merge_join_positions(left, right)
            assert len(left_positions) == len(right_positions) == 0


class TestColumnVectorAndTable:
    def test_vector_cache_and_take(self, rng):
        values = rng.integers(0, 5, 1000)
        column = ColumnVector("x", values)
        np.testing.assert_array_equal(column.values(), values)
        np.testing.assert_array_equal(column.take(np.array([3, 7])), values[[3, 7]])
        assert column.encoded_bytes > 0

    def test_vector_validation(self, rng):
        with pytest.raises(ValueError):
            ColumnVector("", rng.random(5))
        with pytest.raises(ValueError):
            ColumnVector("x", rng.random((5, 2)))

    def test_table_construction_checks(self, rng):
        with pytest.raises(ValueError):
            ColumnTable("t", [ColumnVector("a", rng.random(3)), ColumnVector("a", rng.random(3))])
        with pytest.raises(ValueError):
            ColumnTable("t", [ColumnVector("a", rng.random(3)), ColumnVector("b", rng.random(4))])
        with pytest.raises(ValueError):
            ColumnTable("t", [])

    def test_table_from_arrays_and_rows(self, rng):
        table = ColumnTable.from_arrays("t", {"a": np.arange(5), "b": rng.random(5)})
        assert table.row_count == 5
        assert table.column_names == ["a", "b"]
        rows = table.to_rows(["a"])
        assert rows == [(i,) for i in range(5)]
        assert table.compressed_bytes > 0
        assert set(table.encodings()) == {"a", "b"}

    def test_gather_with_indices(self, rng):
        table = ColumnTable.from_arrays("t", {"a": np.arange(10), "b": rng.random(10)})
        gathered = table.gather(["a"], indices=np.array([2, 4]))
        np.testing.assert_array_equal(gathered["a"], [2, 4])


class TestColumnQuery:
    @pytest.fixture()
    def store(self, tiny_dataset) -> ColumnStore:
        store = ColumnStore()
        micro = tiny_dataset.microarray_relational()
        store.create_table(
            "microarray",
            {
                "gene_id": micro[:, 0].astype(np.int64),
                "patient_id": micro[:, 1].astype(np.int64),
                "expression_value": micro[:, 2],
            },
        )
        store.create_table(
            "genes",
            {
                "gene_id": tiny_dataset.genes.gene_id,
                "function": tiny_dataset.genes.function,
            },
        )
        store.create_table(
            "patients",
            {
                "patient_id": tiny_dataset.patients.patient_id,
                "disease_id": tiny_dataset.patients.disease_id,
            },
        )
        return store

    def test_where_narrows_selection(self, store, tiny_dataset):
        query = store.query("genes").where("function", lambda v: v < 10)
        expected = int(np.sum(tiny_dataset.genes.function < 10))
        assert len(query) == expected

    def test_where_in_and_chaining(self, store):
        query = (
            store.query("microarray")
            .where_in("gene_id", [0, 1, 2])
            .where("expression_value", lambda v: v > 0)
        )
        assert np.all(np.isin(query.column("gene_id"), [0, 1, 2]))

    def test_where_in_accepts_ndarray_and_dedupes(self, store):
        reference = store.query("microarray").where_in("gene_id", [0, 1, 2]).selection
        for keys in (
            np.array([0, 1, 2], dtype=np.int64),
            np.array([2, 0, 1, 1, 2, 0, 0]),  # duplicated, unsorted
            iter([0, 1, 2, 2]),               # any iterable still works
        ):
            np.testing.assert_array_equal(
                store.query("microarray").where_in("gene_id", keys).selection, reference
            )

    def test_where_in_chained_after_filter(self, store):
        narrowed = store.query("microarray").where("expression_value", lambda v: v > 0)
        chained = narrowed.where_in("gene_id", np.array([0, 1]))
        assert np.all(np.isin(chained.column("gene_id"), [0, 1]))
        assert np.all(chained.column("expression_value") > 0)

    def test_where_in_empty_values_returns_empty_selection(self, store):
        """Regression: an empty key list used to build a float64 lookup whose
        dtype clashed with string/int columns; it must short-circuit instead."""
        table = ColumnTable.from_arrays(
            "mixed",
            {
                "label": np.array(["a", "b", "a", "c"] * 25),
                "count": np.arange(100, dtype=np.int64),
            },
        )
        for column, empty in (("label", []), ("count", []), ("count", iter(()))):
            query = ColumnQuery(table).where_in(column, empty)
            assert len(query) == 0
            assert query.selection.dtype == np.int64
        # Also after a narrowing filter, and with an empty ndarray.
        narrowed = ColumnQuery(table).where("count", lambda v: v > 10)
        assert len(narrowed.where_in("label", np.array([], dtype=np.float64))) == 0
        # An unknown column still raises even when the key set is empty.
        with pytest.raises(KeyError):
            ColumnQuery(table).where_in("missing", [])

    def test_where_predicate_shape_check(self, store):
        # Filters are lazy: the shape check fires when the selection is
        # first materialised, not at .where() time.
        query = store.query("genes").where("function", lambda v: np.array([True]))
        with pytest.raises(ValueError):
            len(query)

    def test_sample_deterministic(self, store):
        first = store.query("patients").sample(0.2, seed=3).column("patient_id")
        second = store.query("patients").sample(0.2, seed=3).column("patient_id")
        np.testing.assert_array_equal(first, second)
        with pytest.raises(ValueError):
            store.query("patients").sample(0.0)

    def test_to_matrix_and_table(self, store):
        query = store.query("genes")
        matrix = query.to_matrix(["gene_id", "function"])
        assert matrix.shape == (len(query), 2)
        table = query.to_table("genes_copy", ["gene_id"])
        assert table.row_count == len(query)

    def test_join_matches_reference(self, store, tiny_dataset):
        threshold = 10
        genes = store.query("genes").where("function", lambda v: v < threshold)
        joined = genes.join(
            store.query("microarray"),
            "gene_id",
            "gene_id",
            columns={"gene_id": "gene_id"},
            other_columns={"patient_id": "patient_id", "expression_value": "expression_value"},
        ).collect()
        expected_genes = int(np.sum(tiny_dataset.genes.function < threshold))
        assert joined.row_count == expected_genes * tiny_dataset.n_patients

    def test_pivot_matches_source(self, store, tiny_dataset):
        matrix, rows, cols = store.query("microarray").pivot(
            "patient_id", "gene_id", "expression_value"
        )
        np.testing.assert_allclose(matrix, tiny_dataset.expression_matrix, atol=1e-12)
        np.testing.assert_array_equal(rows, np.arange(tiny_dataset.n_patients))

    def test_group_aggregate_functions(self, store, tiny_dataset):
        keys, means = store.query("microarray").group_aggregate(
            "gene_id", "expression_value", "mean"
        )
        np.testing.assert_allclose(means, tiny_dataset.expression_matrix.mean(axis=0), atol=1e-12)
        _, counts = store.query("microarray").group_aggregate(
            "gene_id", "expression_value", "count"
        )
        assert np.all(counts == tiny_dataset.n_patients)
        _, minimums = store.query("microarray").group_aggregate(
            "gene_id", "expression_value", "min"
        )
        np.testing.assert_allclose(minimums, tiny_dataset.expression_matrix.min(axis=0), atol=1e-12)
        with pytest.raises(ValueError):
            store.query("microarray").group_aggregate("gene_id", "expression_value", "median")


ENCODING_NAMES = ("plain", "rle", "dictionary", "delta")


class TestAggregationPushdown:
    """Aggregation on narrowed selections, forced through every encoding."""

    def _table(self, encoding_name: str) -> ColumnTable:
        rng = np.random.default_rng(42)
        n = 400
        groups = np.sort(rng.integers(0, 12, n))  # sorted: valid for delta too
        others = rng.integers(0, 5, n)
        values = rng.integers(-50, 50, n).astype(np.float64)
        return ColumnTable(
            "t",
            [
                ColumnVector("g", groups, encoding=encoding_name),
                ColumnVector("c", others),
                ColumnVector("v", values),
            ],
        )

    @staticmethod
    def _reference_aggregate(groups, values, function):
        keys, inverse = np.unique(groups, return_inverse=True)
        if function == "min":
            result = np.full(len(keys), np.inf)
            np.minimum.at(result, inverse, values)
        else:
            result = np.full(len(keys), -np.inf)
            np.maximum.at(result, inverse, values)
        return keys, result

    @pytest.mark.parametrize("encoding_name", ENCODING_NAMES)
    @pytest.mark.parametrize("function", ["min", "max"])
    def test_group_aggregate_min_max_on_narrowed_selection(self, encoding_name, function):
        table = self._table(encoding_name)
        query = ColumnQuery(table).where("v", lambda v: v > 0)
        assert 0 < len(query) < table.row_count  # genuinely narrowed
        keys, aggregates = query.group_aggregate("g", "v", function)
        expected_keys, expected = self._reference_aggregate(
            query.column("g"), query.column("v"), function
        )
        np.testing.assert_array_equal(keys, expected_keys)
        np.testing.assert_array_equal(aggregates, expected)

    @pytest.mark.parametrize("encoding_name", ENCODING_NAMES)
    def test_pivot_on_narrowed_selection(self, encoding_name):
        table = self._table(encoding_name)
        query = ColumnQuery(table).where("v", lambda v: v <= 0)
        assert 0 < len(query) < table.row_count
        matrix, row_labels, column_labels = query.pivot("g", "c", "v")
        rows, cols, values = query.column("g"), query.column("c"), query.column("v")
        expected_rows, row_positions = np.unique(rows, return_inverse=True)
        expected_cols, column_positions = np.unique(cols, return_inverse=True)
        expected = np.zeros((len(expected_rows), len(expected_cols)))
        expected[row_positions, column_positions] = values
        np.testing.assert_array_equal(row_labels, expected_rows)
        np.testing.assert_array_equal(column_labels, expected_cols)
        np.testing.assert_array_equal(matrix, expected)

    @pytest.mark.parametrize("encoding_name", ENCODING_NAMES)
    def test_pivot_duplicate_cells_are_last_write_wins(self, encoding_name):
        """Duplicate (row, column) pairs keep the *last* value in selection
        order — documented behaviour, pinned per encoding."""
        rows = np.array([0, 0, 1, 0], dtype=np.int64)
        cols = np.array([2, 2, 3, 3], dtype=np.int64)
        values = np.array([1.0, 7.5, 3.0, 4.25])
        table = ColumnTable(
            "dup",
            [
                ColumnVector("r", rows, encoding=encoding_name),
                ColumnVector("c", cols),
                ColumnVector("v", values),
            ],
        )
        matrix, row_labels, column_labels = ColumnQuery(table).pivot("r", "c", "v")
        np.testing.assert_array_equal(row_labels, [0, 1])
        np.testing.assert_array_equal(column_labels, [2, 3])
        # (0, 2) appears twice: 1.0 then 7.5 — the later row wins.
        np.testing.assert_array_equal(matrix, [[7.5, 4.25], [0.0, 3.0]])

    @pytest.mark.parametrize("encoding_name", ENCODING_NAMES)
    def test_returned_keys_are_safe_to_mutate(self, encoding_name):
        """group_aggregate/pivot/distinct must never leak a mutable alias of
        encoding state (the dictionary itself) out of the query layer."""
        table = self._table(encoding_name)
        original = table.column("g").values().copy()
        query = ColumnQuery(table)
        keys, _ = query.group_aggregate("g", "v", "count")
        keys += 100
        matrix, row_labels, column_labels = query.pivot("g", "c", "v")
        row_labels += 100
        column_labels += 100
        query.distinct("g")[:] = -1
        np.testing.assert_array_equal(table.column("g").values(), original)
        np.testing.assert_array_equal(
            query.group_aggregate("g", "v", "count")[0], np.unique(original)
        )

    @pytest.mark.parametrize("encoding_name", ENCODING_NAMES)
    def test_count_needs_no_values(self, encoding_name):
        """count never reads the value column: group_reduce accepts None."""
        table = self._table(encoding_name)
        keys, counts = table.column("g").group_reduce(None, "count")
        expected_keys, expected_inverse = np.unique(
            table.column("g").values(), return_inverse=True
        )
        np.testing.assert_array_equal(keys, expected_keys)
        np.testing.assert_array_equal(
            counts, np.bincount(expected_inverse, minlength=len(expected_keys))
        )

    @pytest.mark.parametrize("encoding_name", ENCODING_NAMES)
    def test_distinct_matches_unique(self, encoding_name):
        table = self._table(encoding_name)
        full = ColumnQuery(table)
        np.testing.assert_array_equal(
            full.distinct("g"), np.unique(full.column("g"))
        )
        narrowed = full.where("v", lambda v: v > 0)
        np.testing.assert_array_equal(
            narrowed.distinct("g"), np.unique(narrowed.column("g"))
        )

    @pytest.mark.parametrize("encoding_name", ENCODING_NAMES)
    def test_narrowed_selection_drops_absent_group_keys(self, encoding_name):
        table = self._table(encoding_name)
        # Narrow to one group value: every other key must vanish, exactly as
        # np.unique over the gathered rows would report.
        query = ColumnQuery(table).where("g", lambda v: v == 3)
        keys, counts = query.group_aggregate("g", "v", "count")
        np.testing.assert_array_equal(keys, [3])
        assert counts[0] == len(query)


class TestColumnStoreCatalog:
    def test_create_register_drop(self, rng):
        store = ColumnStore()
        store.create_table("t", {"x": np.arange(3)})
        with pytest.raises(ValueError):
            store.create_table("t", {"x": np.arange(3)})
        other = ColumnTable.from_arrays("u", {"y": rng.random(4)})
        store.register(other)
        assert set(store.table_names()) == {"t", "u"}
        store.drop_table("u")
        with pytest.raises(KeyError):
            store.table("u")
        assert store.total_rows() == 3
        assert store.total_compressed_bytes() > 0
        assert "t" in store.describe()

    def test_unknown_table_message(self):
        with pytest.raises(KeyError, match="known tables"):
            ColumnStore().query("missing")


class TestUdfHost:
    def test_marshalling_copies_are_counted(self, rng):
        host = UdfHost()
        matrix = rng.random((50, 4))
        result = host.call("covariance", matrix)
        np.testing.assert_allclose(result, np.cov(matrix, rowvar=False), atol=1e-10)
        assert host.total_bytes_marshalled == matrix.nbytes * host.copies_per_call
        assert host.calls[0].name == "covariance"

    def test_register_additional_udf(self):
        host = UdfHost()
        host.register("sum", lambda m: float(np.sum(m)))
        assert host.call("sum", np.ones(5)) == pytest.approx(5.0)
        with pytest.raises(ValueError):
            host.register("sum", lambda m: 0.0)

    def test_marshalling_does_not_mutate_input(self, rng):
        host = UdfHost()
        matrix = rng.random((10, 3))
        original = matrix.copy()
        host.call("covariance", matrix)
        np.testing.assert_array_equal(matrix, original)
