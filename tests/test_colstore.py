"""Tests for the column-store engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.colstore import (
    ColumnQuery,
    ColumnStore,
    ColumnTable,
    ColumnVector,
    DeltaEncoding,
    DictionaryEncoding,
    PlainEncoding,
    RunLengthEncoding,
    best_encoding,
)
from repro.colstore.udf import UdfHost


class TestEncodings:
    def test_rle_roundtrip_and_compression(self):
        values = np.repeat(np.array([1, 2, 3, 2]), 500)
        encoding = RunLengthEncoding()
        encoding.encode(values)
        np.testing.assert_array_equal(encoding.decode(), values)
        assert encoding.run_count == 4
        assert encoding.encoded_bytes() < values.nbytes / 10

    def test_dictionary_roundtrip_and_narrow_codes(self):
        values = np.tile(np.arange(10), 300)
        encoding = DictionaryEncoding()
        encoding.encode(values)
        np.testing.assert_array_equal(encoding.decode(), values)
        assert encoding.cardinality == 10
        assert encoding.encoded_bytes() < values.nbytes / 4

    def test_delta_roundtrip_monotone(self):
        values = np.cumsum(np.random.default_rng(0).integers(1, 100, 1000))
        encoding = DeltaEncoding()
        encoding.encode(values)
        np.testing.assert_array_equal(encoding.decode(), values)
        assert encoding.encoded_bytes() < values.nbytes

    def test_plain_roundtrip(self):
        values = np.random.default_rng(0).random(100)
        encoding = PlainEncoding()
        encoding.encode(values)
        np.testing.assert_array_equal(encoding.decode(), values)

    def test_empty_columns(self):
        for encoding in (PlainEncoding(), RunLengthEncoding(), DeltaEncoding()):
            encoding.encode(np.empty(0, dtype=np.int64))
            assert len(encoding.decode()) == 0

    def test_best_encoding_choices(self):
        constant = np.zeros(10_000, dtype=np.int64)
        assert best_encoding(constant).name == "rle"
        monotone = np.arange(10_000, dtype=np.int64)
        assert best_encoding(monotone).name in ("delta", "rle")
        random_floats = np.random.default_rng(0).random(10_000)
        assert best_encoding(random_floats).name == "plain"

    def test_best_encoding_roundtrips(self, rng):
        for values in (
            rng.integers(0, 3, 5000),
            rng.integers(0, 100_000, 5000),
            rng.random(2000),
            np.repeat(rng.random(5), 1000),
        ):
            encoding = best_encoding(values)
            np.testing.assert_array_equal(encoding.decode(), values)


class TestColumnVectorAndTable:
    def test_vector_cache_and_take(self, rng):
        values = rng.integers(0, 5, 1000)
        column = ColumnVector("x", values)
        np.testing.assert_array_equal(column.values(), values)
        np.testing.assert_array_equal(column.take(np.array([3, 7])), values[[3, 7]])
        assert column.encoded_bytes > 0

    def test_vector_validation(self, rng):
        with pytest.raises(ValueError):
            ColumnVector("", rng.random(5))
        with pytest.raises(ValueError):
            ColumnVector("x", rng.random((5, 2)))

    def test_table_construction_checks(self, rng):
        with pytest.raises(ValueError):
            ColumnTable("t", [ColumnVector("a", rng.random(3)), ColumnVector("a", rng.random(3))])
        with pytest.raises(ValueError):
            ColumnTable("t", [ColumnVector("a", rng.random(3)), ColumnVector("b", rng.random(4))])
        with pytest.raises(ValueError):
            ColumnTable("t", [])

    def test_table_from_arrays_and_rows(self, rng):
        table = ColumnTable.from_arrays("t", {"a": np.arange(5), "b": rng.random(5)})
        assert table.row_count == 5
        assert table.column_names == ["a", "b"]
        rows = table.to_rows(["a"])
        assert rows == [(i,) for i in range(5)]
        assert table.compressed_bytes > 0
        assert set(table.encodings()) == {"a", "b"}

    def test_gather_with_indices(self, rng):
        table = ColumnTable.from_arrays("t", {"a": np.arange(10), "b": rng.random(10)})
        gathered = table.gather(["a"], indices=np.array([2, 4]))
        np.testing.assert_array_equal(gathered["a"], [2, 4])


class TestColumnQuery:
    @pytest.fixture()
    def store(self, tiny_dataset) -> ColumnStore:
        store = ColumnStore()
        micro = tiny_dataset.microarray_relational()
        store.create_table(
            "microarray",
            {
                "gene_id": micro[:, 0].astype(np.int64),
                "patient_id": micro[:, 1].astype(np.int64),
                "expression_value": micro[:, 2],
            },
        )
        store.create_table(
            "genes",
            {
                "gene_id": tiny_dataset.genes.gene_id,
                "function": tiny_dataset.genes.function,
            },
        )
        store.create_table(
            "patients",
            {
                "patient_id": tiny_dataset.patients.patient_id,
                "disease_id": tiny_dataset.patients.disease_id,
            },
        )
        return store

    def test_where_narrows_selection(self, store, tiny_dataset):
        query = store.query("genes").where("function", lambda v: v < 10)
        expected = int(np.sum(tiny_dataset.genes.function < 10))
        assert len(query) == expected

    def test_where_in_and_chaining(self, store):
        query = (
            store.query("microarray")
            .where_in("gene_id", [0, 1, 2])
            .where("expression_value", lambda v: v > 0)
        )
        assert np.all(np.isin(query.column("gene_id"), [0, 1, 2]))

    def test_where_predicate_shape_check(self, store):
        with pytest.raises(ValueError):
            store.query("genes").where("function", lambda v: np.array([True]))

    def test_sample_deterministic(self, store):
        first = store.query("patients").sample(0.2, seed=3).column("patient_id")
        second = store.query("patients").sample(0.2, seed=3).column("patient_id")
        np.testing.assert_array_equal(first, second)
        with pytest.raises(ValueError):
            store.query("patients").sample(0.0)

    def test_to_matrix_and_table(self, store):
        query = store.query("genes")
        matrix = query.to_matrix(["gene_id", "function"])
        assert matrix.shape == (len(query), 2)
        table = query.to_table("genes_copy", ["gene_id"])
        assert table.row_count == len(query)

    def test_join_matches_reference(self, store, tiny_dataset):
        threshold = 10
        genes = store.query("genes").where("function", lambda v: v < threshold)
        joined = genes.join(
            store.query("microarray"),
            "gene_id",
            "gene_id",
            columns={"gene_id": "gene_id"},
            other_columns={"patient_id": "patient_id", "expression_value": "expression_value"},
        )
        expected_genes = int(np.sum(tiny_dataset.genes.function < threshold))
        assert joined.row_count == expected_genes * tiny_dataset.n_patients

    def test_pivot_matches_source(self, store, tiny_dataset):
        matrix, rows, cols = store.query("microarray").pivot(
            "patient_id", "gene_id", "expression_value"
        )
        np.testing.assert_allclose(matrix, tiny_dataset.expression_matrix, atol=1e-12)
        np.testing.assert_array_equal(rows, np.arange(tiny_dataset.n_patients))

    def test_group_aggregate_functions(self, store, tiny_dataset):
        keys, means = store.query("microarray").group_aggregate(
            "gene_id", "expression_value", "mean"
        )
        np.testing.assert_allclose(means, tiny_dataset.expression_matrix.mean(axis=0), atol=1e-12)
        _, counts = store.query("microarray").group_aggregate(
            "gene_id", "expression_value", "count"
        )
        assert np.all(counts == tiny_dataset.n_patients)
        _, minimums = store.query("microarray").group_aggregate(
            "gene_id", "expression_value", "min"
        )
        np.testing.assert_allclose(minimums, tiny_dataset.expression_matrix.min(axis=0), atol=1e-12)
        with pytest.raises(ValueError):
            store.query("microarray").group_aggregate("gene_id", "expression_value", "median")


class TestColumnStoreCatalog:
    def test_create_register_drop(self, rng):
        store = ColumnStore()
        store.create_table("t", {"x": np.arange(3)})
        with pytest.raises(ValueError):
            store.create_table("t", {"x": np.arange(3)})
        other = ColumnTable.from_arrays("u", {"y": rng.random(4)})
        store.register(other)
        assert set(store.table_names()) == {"t", "u"}
        store.drop_table("u")
        with pytest.raises(KeyError):
            store.table("u")
        assert store.total_rows() == 3
        assert store.total_compressed_bytes() > 0
        assert "t" in store.describe()

    def test_unknown_table_message(self):
        with pytest.raises(KeyError, match="known tables"):
            ColumnStore().query("missing")


class TestUdfHost:
    def test_marshalling_copies_are_counted(self, rng):
        host = UdfHost()
        matrix = rng.random((50, 4))
        result = host.call("covariance", matrix)
        np.testing.assert_allclose(result, np.cov(matrix, rowvar=False), atol=1e-10)
        assert host.total_bytes_marshalled == matrix.nbytes * host.copies_per_call
        assert host.calls[0].name == "covariance"

    def test_register_additional_udf(self):
        host = UdfHost()
        host.register("sum", lambda m: float(np.sum(m)))
        assert host.call("sum", np.ones(5)) == pytest.approx(5.0)
        with pytest.raises(ValueError):
            host.register("sum", lambda m: 0.0)

    def test_marshalling_does_not_mutate_input(self, rng):
        host = UdfHost()
        matrix = rng.random((10, 3))
        original = matrix.copy()
        host.call("covariance", matrix)
        np.testing.assert_array_equal(matrix, original)
