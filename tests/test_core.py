"""Tests for the benchmark core: spec, timing, reference queries, runner, results."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import (
    QUERY_NAMES,
    BenchmarkRunner,
    PhaseTimer,
    QueryResult,
    ReferenceImplementation,
    ResultTable,
    list_engines,
    make_engine,
    speedup_table,
)
from repro.core.engines import ENGINE_FACTORIES, MULTI_NODE_ENGINES, SINGLE_NODE_ENGINES
from repro.core.engines.base import Engine, UnsupportedQueryError
from repro.core.queries import (
    bicluster_patient_ids,
    covariance_patient_ids,
    selected_gene_ids,
    statistics_patient_ids,
)
from repro.core.results import breakdown_series, figure_series, render_speedup_table
from repro.core.runner import RunStatus
from repro.core.spec import default_parameters, validate_query_name


class TestSpec:
    def test_query_names_and_aliases(self):
        assert len(QUERY_NAMES) == 5
        assert validate_query_name("Q1") == "regression"
        assert validate_query_name("linear regression") == "regression"
        assert validate_query_name("wilcoxon") == "statistics"
        assert validate_query_name("SVD") == "svd"
        with pytest.raises(ValueError):
            validate_query_name("clustering")

    def test_default_parameters_scale_with_spec(self, tiny_dataset):
        parameters = default_parameters(tiny_dataset.spec)
        threshold = parameters.function_threshold(tiny_dataset.spec)
        assert 0 < threshold <= tiny_dataset.spec.n_functions
        assert 1 <= parameters.svd_k(tiny_dataset.spec) <= tiny_dataset.spec.n_genes
        fraction = parameters.sample_fraction(tiny_dataset.spec)
        assert fraction * tiny_dataset.n_patients >= 3

    def test_parameters_are_frozen(self, tiny_parameters):
        with pytest.raises(AttributeError):
            tiny_parameters.svd_rank = 5


class TestPhaseTimer:
    def test_accumulates_phases(self):
        timer = PhaseTimer()
        with timer.data_management():
            time.sleep(0.01)
        with timer.analytics():
            time.sleep(0.005)
        assert timer.data_management_seconds >= 0.01
        assert timer.analytics_seconds >= 0.005
        assert timer.total_seconds == pytest.approx(
            timer.data_management_seconds + timer.analytics_seconds
        )
        assert 0 < timer.analytics_fraction() < 1

    def test_modelled_seconds_and_notes(self):
        timer = PhaseTimer()
        timer.add_data_management(1.5)
        timer.add_analytics(0.5)
        timer.note("bytes", 10)
        timer.note("bytes", 5)
        assert timer.total_seconds == pytest.approx(2.0)
        assert timer.notes["bytes"] == 15
        with pytest.raises(ValueError):
            timer.add_analytics(-1)


class TestSelections:
    def test_selection_helpers_match_filters(self, tiny_dataset, tiny_parameters):
        genes = selected_gene_ids(tiny_dataset, tiny_parameters)
        threshold = tiny_parameters.function_threshold(tiny_dataset.spec)
        np.testing.assert_array_equal(
            genes, np.flatnonzero(tiny_dataset.genes.function < threshold)
        )
        patients = covariance_patient_ids(tiny_dataset, tiny_parameters)
        assert np.all(np.isin(tiny_dataset.patients.disease_id[patients],
                              sorted(tiny_parameters.covariance_diseases)))
        young_males = bicluster_patient_ids(tiny_dataset, tiny_parameters)
        assert np.all(tiny_dataset.patients.age[young_males] < tiny_parameters.bicluster_max_age)
        assert np.all(tiny_dataset.patients.gender[young_males] == tiny_parameters.bicluster_gender)
        sample = statistics_patient_ids(tiny_dataset, tiny_parameters)
        np.testing.assert_array_equal(sample, statistics_patient_ids(tiny_dataset, tiny_parameters))


class TestReferenceImplementation:
    def test_all_queries_produce_summaries(self, tiny_dataset):
        reference = ReferenceImplementation(tiny_dataset)
        for query in QUERY_NAMES:
            output = reference.run(query)
            assert output.query == query
            assert output.summary
            assert output.payload is not None

    def test_regression_finds_signal(self, tiny_dataset):
        output = ReferenceImplementation(tiny_dataset).run("regression")
        assert 0 <= output.scalar("r_squared") <= 1
        assert output.scalar("n_patients") == tiny_dataset.n_patients

    def test_statistics_recovers_planted_terms(self, small_dataset):
        output = ReferenceImplementation(small_dataset).run("statistics")
        significant = set(output.payload.significant_terms().tolist())
        planted = set(small_dataset.ontology.enriched_terms.tolist())
        assert planted <= significant

    def test_svd_spectrum_descends(self, tiny_dataset):
        output = ReferenceImplementation(tiny_dataset).run("svd")
        values = output.payload.singular_values
        assert np.all(np.diff(values) <= 1e-9)


class TestEngineRegistry:
    def test_registry_contents(self):
        assert set(SINGLE_NODE_ENGINES) <= set(ENGINE_FACTORIES)
        assert set(MULTI_NODE_ENGINES) <= set(ENGINE_FACTORIES)
        assert len(list_engines()) == len(ENGINE_FACTORIES)
        assert "scidb" in list_engines(multi_node=False)
        assert "pbdr" in list_engines(multi_node=True)

    def test_make_engine_and_unknown(self):
        engine = make_engine("scidb")
        assert engine.name == "scidb"
        cluster_engine = make_engine("pbdr", n_nodes=3)
        assert cluster_engine.n_nodes == 3
        with pytest.raises(KeyError, match="known engines"):
            make_engine("oracle")

    def test_engine_requires_load_before_run(self, tiny_parameters):
        engine = make_engine("scidb")
        with pytest.raises(RuntimeError, match="no dataset loaded"):
            engine.run("svd", tiny_parameters, PhaseTimer())

    def test_unsupported_query_raises(self, tiny_dataset, tiny_parameters):
        engine = make_engine("hadoop")
        engine.load(tiny_dataset)
        with pytest.raises(UnsupportedQueryError):
            engine.run("biclustering", tiny_parameters, PhaseTimer())


class TestRunner:
    def test_successful_run_records_phases(self, tiny_dataset):
        runner = BenchmarkRunner(timeout_seconds=60)
        result = runner.run("covariance", "scidb", tiny_dataset)
        assert result.status is RunStatus.OK
        assert result.total_seconds == pytest.approx(
            result.data_management_seconds + result.analytics_seconds
        )
        assert result.output is not None
        assert result.as_dict()["engine"] == "scidb"

    def test_unsupported_is_reported_not_raised(self, tiny_dataset):
        runner = BenchmarkRunner()
        result = runner.run("biclustering", "postgres-madlib", tiny_dataset)
        assert result.status is RunStatus.UNSUPPORTED
        assert not result.status.is_infinite

    def test_memory_error_is_infinite(self, tiny_dataset):
        runner = BenchmarkRunner()
        result = runner.run("covariance", "vanilla-r", tiny_dataset, max_cells=100)
        assert result.status is RunStatus.MEMORY_ERROR
        assert result.status.is_infinite
        assert result.plot_value(ceiling=999.0) == 999.0

    def test_timeout_enforced(self, tiny_dataset):
        runner = BenchmarkRunner(timeout_seconds=0.2)

        class SlowEngine(Engine):
            name = "slow"

            def _load(self, dataset):
                return None

            def _run_regression(self, parameters, timer):
                with timer.analytics():
                    time.sleep(2.0)

        result = runner.run("regression", SlowEngine(), tiny_dataset)
        assert result.status is RunStatus.TIMEOUT
        assert result.total_seconds < 1.5

    def test_verification_passes_for_correct_engine(self, tiny_dataset):
        runner = BenchmarkRunner(verify=True)
        result = runner.run("regression", "columnstore-udf", tiny_dataset)
        assert result.status is RunStatus.OK

    def test_verification_catches_wrong_answers(self, tiny_dataset, tiny_parameters):
        class WrongEngine(Engine):
            name = "wrong"

            def _load(self, dataset):
                return None

            def _run_svd(self, parameters, timer):
                from repro.core.queries import QueryOutput

                return QueryOutput(query="svd", summary={
                    "n_selected_genes": 1, "k": 1, "top_singular_value": 0.0,
                })

        runner = BenchmarkRunner(verify=True)
        result = runner.run("svd", WrongEngine(), tiny_dataset)
        assert result.status is RunStatus.ERROR
        assert "mismatch" in result.error

    def test_run_many(self, tiny_dataset):
        runner = BenchmarkRunner()
        results = runner.run_many(["svd", "covariance"], ["scidb", "columnstore-udf"], tiny_dataset)
        assert len(results) == 4
        assert {r.engine for r in results} == {"scidb", "columnstore-udf"}

    def test_engine_instance_reuse_skips_reload(self, tiny_dataset):
        engine = make_engine("scidb")
        engine.load(tiny_dataset)
        runner = BenchmarkRunner()
        first = runner.run("svd", engine, tiny_dataset)
        second = runner.run("covariance", engine, tiny_dataset)
        assert first.status is RunStatus.OK and second.status is RunStatus.OK


class TestResults:
    def _result(self, engine, query, size, dm, an, status=RunStatus.OK, n_nodes=1):
        return QueryResult(
            engine=engine, query=query, dataset_size=size, status=status,
            data_management_seconds=dm, analytics_seconds=an, n_nodes=n_nodes,
        )

    def test_table_filter_and_render(self):
        table = ResultTable()
        table.add(self._result("scidb", "svd", "small", 1.0, 2.0))
        table.add(self._result("hadoop", "svd", "small", 5.0, 50.0))
        table.add(self._result("scidb", "svd", "medium", 2.0, 4.0))
        assert len(table.filter(engine="scidb")) == 2
        assert table.engines() == ["hadoop", "scidb"]
        assert table.sizes() == ["small", "medium"]
        rendered = table.render()
        assert "scidb" in rendered and "hadoop" in rendered

    def test_figure_series_marks_unsupported_and_infinite(self):
        table = ResultTable()
        table.add(self._result("scidb", "svd", "small", 1.0, 2.0))
        table.add(self._result("hadoop", "svd", "small", 0.0, 0.0, status=RunStatus.UNSUPPORTED))
        table.add(self._result("vanilla-r", "svd", "small", 0.0, 0.0, status=RunStatus.MEMORY_ERROR))
        series = figure_series(table, "svd", ceiling=100.0)
        assert series["scidb"][0][1] == pytest.approx(3.0)
        assert series["hadoop"][0][1] is None
        assert series["vanilla-r"][0][1] == 100.0

    def test_breakdown_series(self):
        table = ResultTable()
        table.add(self._result("scidb", "regression", "small", 1.0, 2.0))
        table.add(self._result("scidb", "regression", "medium", 3.0, 8.0))
        series = breakdown_series(table, "regression")
        assert series["scidb"]["data_management"] == [("small", 1.0), ("medium", 3.0)]
        assert series["scidb"]["analytics"][1][1] == 8.0

    def test_speedup_table_and_rendering(self):
        baseline = ResultTable()
        accelerated = ResultTable()
        for nodes, base_time, accel_time in [(1, 10.0, 4.0), (2, 6.0, 4.0), (4, 4.0, 3.5)]:
            baseline.add(self._result("scidb-cluster", "covariance", "large", 1.0, base_time, n_nodes=nodes))
            accelerated.add(self._result("scidb-phi-cluster", "covariance", "large", 1.0, accel_time, n_nodes=nodes))
        speedups = speedup_table(baseline, accelerated, queries=("covariance",))
        assert speedups["covariance"][1] == pytest.approx(2.5)
        assert speedups["covariance"][4] == pytest.approx(4.0 / 3.5)
        rendered = render_speedup_table(speedups)
        assert "covariance" in rendered and "2.50" in rendered

    def test_figure_series_node_axis(self):
        table = ResultTable()
        for nodes in (1, 2, 4):
            table.add(self._result("pbdr", "regression", "large", 1.0, 10.0 / nodes, n_nodes=nodes))
        series = figure_series(table, "regression", x_axis="n_nodes")
        xs = [x for x, _ in series["pbdr"]]
        assert xs == [1, 2, 4]
        with pytest.raises(ValueError):
            figure_series(table, "regression", x_axis="bogus")
