"""Static plan verifier: rejection classes, node paths, rewrite soundness.

Covers :mod:`repro.plan.verify` and the dtype-inference layer beneath it
(:meth:`Expression.infer_dtype`, :meth:`PlanNode.output_schema`): one
parametrised case per rejection class asserting the rule name, the node
path, and — for the dtype-mismatch classes — that the message names both
offending dtypes; a hypothesis property that ``optimize()`` never changes
a verified schema over the fuzz grammar; and a subprocess proof that a
deliberately schema-breaking optimizer rule trips the rewrite-soundness
check when ``REPRO_VERIFY_PLANS`` is set.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.colstore.catalog import ColumnStore
from repro.colstore.planner import ColumnStoreCatalog, optimize_plan
from repro.core.queries import dataset_tables
from repro.fuzz.generate import FuzzSchema, case_from_seed
from repro.plan import (
    Aggregate,
    Filter,
    Join,
    MappingCatalog,
    Pivot,
    PlanVerificationError,
    Project,
    RewriteSoundnessError,
    Sample,
    Scan,
    and_,
    col,
    lit,
    literal_dtype,
    maybe_verify_rewrite,
    opaque,
    verification_enabled,
    verified_schema,
    verify_rewrite,
)

REPO = Path(__file__).resolve().parent.parent

I64 = np.dtype(np.int64)
F64 = np.dtype(np.float64)
U16 = np.dtype("U16")

SCHEMAS = {
    "patients": {"patient_id": I64, "name": U16, "age": I64,
                 "disease_id": I64},
    "genes": {"gene_id": I64, "function": F64},
    "microarray": {"patient_id": I64, "gene_id": I64,
                   "expression_value": F64},
}


def patients() -> Scan:
    return Scan("patients")


# --------------------------------------------------------------------------- #
# Success paths: inferred schemas and dtypes
# --------------------------------------------------------------------------- #

class TestVerifiedSchema:
    def test_scan_resolves_catalog_schema(self):
        assert verified_schema(patients(), SCHEMAS) == SCHEMAS["patients"]

    def test_filter_and_project_preserve_dtypes(self):
        plan = Project(Filter(patients(), col("age") >= lit(40)),
                       ("name", "age"))
        assert verified_schema(plan, SCHEMAS) == {"name": U16, "age": I64}

    def test_join_drops_right_key_and_keeps_left_dtypes(self):
        plan = Join(patients(), Scan("microarray"), "patient_id", "patient_id")
        schema = verified_schema(plan, SCHEMAS)
        assert list(schema) == ["patient_id", "name", "age", "disease_id",
                                "gene_id", "expression_value"]
        assert schema["expression_value"] == F64

    def test_aggregate_output_dtypes(self):
        base = Scan("microarray")
        cases = {
            "count": I64,           # cardinality, whatever it counts
            "mean": F64,            # divides, so always float
            "sum": F64,             # float input stays float
            "min": F64,
        }
        for function, expected in cases.items():
            plan = Aggregate(base, "gene_id", "expression_value", function)
            schema = verified_schema(plan, SCHEMAS)
            assert schema == {"gene_id": I64,
                              f"{function}(expression_value)": expected}

    def test_integer_sum_widens_to_int64(self):
        plan = Aggregate(patients(), "disease_id", "age", "sum")
        assert verified_schema(plan, SCHEMAS)["sum(age)"] == I64

    def test_integer_division_is_float(self):
        plan = Filter(patients(), (col("age") / lit(2)) > lit(3))
        verified_schema(plan, SCHEMAS)  # no error: float > int compares fine

    def test_pivot_schema(self):
        plan = Pivot(Scan("microarray"), "patient_id", "gene_id",
                     "expression_value")
        assert verified_schema(plan, SCHEMAS) == {
            "patient_id": I64, "gene_id": I64, "value(expression_value)": F64,
        }

    def test_unknown_dtype_downgrades_not_fails(self):
        """None dtypes skip the type checks but keep name checking."""
        schemas = {"t": {"a": None, "b": I64}}
        plan = Filter(Scan("t"), col("a") < lit("text"))
        verified_schema(plan, schemas)  # a's dtype unknown: comparison passes
        with pytest.raises(PlanVerificationError, match="unknown column"):
            verified_schema(Filter(Scan("t"), col("c") < lit(1)), schemas)

    def test_opaque_predicate_checks_column_only(self):
        plan = Filter(patients(), opaque("age", lambda v: v > 40))
        assert verified_schema(plan, SCHEMAS) == SCHEMAS["patients"]

    def test_mapping_catalog_answers_like_a_catalog(self):
        catalog = MappingCatalog(SCHEMAS)
        assert catalog.columns_of("genes") == ["gene_id", "function"]
        assert catalog.dtype_of("genes", "function") == F64
        assert catalog.columns_of("nope") is None
        assert catalog.dtype_of("genes", "nope") is None

    def test_literal_dtype(self):
        assert literal_dtype(1) == I64
        assert literal_dtype(1.5) == F64
        assert literal_dtype("x").kind == "U"


# --------------------------------------------------------------------------- #
# Rejection classes: rule name, node path, dtypes in the message
# --------------------------------------------------------------------------- #

REJECTIONS = [
    # (id, plan, expected rule, expected path, substrings in the message)
    ("unknown-table",
     Filter(Scan("nonexistent"), col("age") < lit(1)),
     "unknown-table", "Filter > Scan('nonexistent')", ["nonexistent"]),
    ("unknown-column",
     Filter(patients(), col("weight") > lit(1)),
     "unknown-column", "Filter", ["weight", "age"]),  # lists in-scope names
    ("comparison-type-mismatch",
     Filter(patients(), col("name") < lit(40)),
     "comparison-type-mismatch", "Filter", ["<U16", "int64"]),
    ("non-numeric-arithmetic",
     Filter(patients(), (col("name") + lit(1)) > lit(0)),
     "non-numeric-arithmetic", "Filter", ["<U16", "+"]),
    ("non-boolean-predicate",
     Filter(patients(), col("age") + lit(1)),
     "non-boolean-predicate", "Filter", ["int64", "expected bool"]),
    ("non-boolean-connective",
     Filter(patients(), and_(col("age") > lit(1), col("patient_id"))),
     "non-boolean-connective", "Filter", ["int64"]),
    ("invalid-sample-fraction",
     Sample(patients(), 1.5),
     "invalid-sample-fraction", "Sample", ["1.5"]),
    ("projection-of-missing-column",
     Project(Project(patients(), ("patient_id",)), ("patient_id", "age")),
     "projection-of-missing-column", "Project", ["age", "patient_id"]),
    ("unknown-join-key",
     Join(patients(), Scan("microarray"), "patient_id", "sample_id"),
     "unknown-join-key", "Join", ["sample_id", "right"]),
    ("join-key-dtype-mismatch",
     Join(patients(), Scan("microarray"), "name", "patient_id"),
     "join-key-dtype-mismatch", "Join", ["<U16", "int64"]),
    ("unknown-aggregate-function",
     Aggregate(patients(), "disease_id", "age", "median"),
     "unknown-aggregate-function", "Aggregate", ["median"]),
    ("non-numeric-aggregate",
     Aggregate(patients(), "disease_id", "name", "sum"),
     "non-numeric-aggregate", "Aggregate", ["<U16", "count"]),
    ("non-numeric-pivot",
     Pivot(patients(), "patient_id", "disease_id", "name"),
     "non-numeric-pivot", "Pivot", ["<U16", "name"]),
]


class TestRejectionClasses:
    @pytest.mark.parametrize("plan,rule,path,fragments",
                             [case[1:] for case in REJECTIONS],
                             ids=[case[0] for case in REJECTIONS])
    def test_rejected_with_rule_path_and_dtypes(self, plan, rule, path,
                                                fragments):
        with pytest.raises(PlanVerificationError) as excinfo:
            verified_schema(plan, SCHEMAS)
        error = excinfo.value
        assert error.rule == rule
        assert error.path == path
        for fragment in fragments:
            assert fragment in str(error), (fragment, str(error))

    def test_every_documented_rejection_class_is_covered(self):
        assert len({case[2] for case in REJECTIONS}) == 13

    def test_error_path_names_the_join_side(self):
        deep = Aggregate(
            Join(patients(),
                 Filter(Scan("microarray"), col("no_such") > lit(0)),
                 "patient_id", "patient_id"),
            "patient_id", "expression_value",
        )
        with pytest.raises(PlanVerificationError) as excinfo:
            verified_schema(deep, SCHEMAS)
        assert excinfo.value.path == "Aggregate > Join.right > Filter"


# --------------------------------------------------------------------------- #
# Rewrite soundness
# --------------------------------------------------------------------------- #

class TestRewriteSoundness:
    def test_identical_plans_pass(self):
        plan = Filter(patients(), col("age") > lit(40))
        assert verify_rewrite(plan, plan, SCHEMAS) == SCHEMAS["patients"]

    def test_column_drop_is_schema_drift(self):
        plan = Filter(patients(), col("age") > lit(40))
        broken = Project(plan, ("patient_id",))
        with pytest.raises(RewriteSoundnessError) as excinfo:
            verify_rewrite(plan, broken, SCHEMAS)
        assert excinfo.value.rule == "rewrite-schema-drift"

    def test_invalid_optimized_plan_is_its_own_rule(self):
        plan = Filter(patients(), col("age") > lit(40))
        broken = Project(plan, ("patient_id", "oops"))
        with pytest.raises(RewriteSoundnessError) as excinfo:
            verify_rewrite(plan, broken, SCHEMAS)
        assert excinfo.value.rule == "rewrite-invalid-plan"

    def test_flag_gates_the_bridge_hook(self, monkeypatch):
        plan = Filter(patients(), col("age") > lit(40))
        broken = Project(plan, ("patient_id",))
        monkeypatch.delenv("REPRO_VERIFY_PLANS", raising=False)
        assert not verification_enabled()
        maybe_verify_rewrite(plan, broken, SCHEMAS)  # no-op while off
        monkeypatch.setenv("REPRO_VERIFY_PLANS", "1")
        assert verification_enabled()
        with pytest.raises(RewriteSoundnessError):
            maybe_verify_rewrite(plan, broken, SCHEMAS)


class TestSchemaBreakingOptimizerIsCaught:
    """The ISSUE's trip-wire, as a subprocess so the env flag and the
    monkeypatched optimizer cannot leak into other tests."""

    SCRIPT = textwrap.dedent("""
        import os, sys
        import numpy as np
        from repro.colstore.catalog import ColumnStore
        from repro.colstore import planner
        from repro.plan import Filter, Project, Scan, col, lit
        from repro.plan.verify import RewriteSoundnessError

        store = ColumnStore()
        store.create_table("t", {"a": np.arange(10), "b": np.arange(10.0)})
        real_optimize = planner.optimize_plan

        def schema_breaking(plan, store=None, bindings=None):
            # A deliberately unsound "rewrite": silently drops column b.
            return Project(real_optimize(plan, store, bindings), ("a",))

        planner.optimize_plan = schema_breaking
        plan = Filter(Scan("t"), col("a") < lit(5))
        try:
            planner.run_plan(plan, store)
        except RewriteSoundnessError as error:
            print("TRIPPED", error.rule)
            sys.exit(0)
        print("NOT TRIPPED")
        sys.exit(1)
    """)

    def _run(self, flag: str | None) -> subprocess.CompletedProcess:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        env.pop("REPRO_VERIFY_PLANS", None)
        if flag is not None:
            env["REPRO_VERIFY_PLANS"] = flag
        return subprocess.run([sys.executable, "-c", self.SCRIPT],
                              capture_output=True, text=True, env=env)

    def test_flag_on_catches_the_broken_rewrite(self):
        result = self._run("1")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "TRIPPED rewrite-schema-drift" in result.stdout

    def test_flag_off_does_not_verify(self):
        result = self._run(None)
        assert result.returncode == 1, result.stdout + result.stderr
        assert "NOT TRIPPED" in result.stdout


# --------------------------------------------------------------------------- #
# Property: optimize() never changes the verified schema (fuzz grammar)
# --------------------------------------------------------------------------- #

class TestOptimizePreservesSchema:
    @pytest.fixture(scope="class")
    def context(self, tiny_dataset):
        tables = dataset_tables(tiny_dataset)
        store = ColumnStore()
        for name, columns in tables.items():
            store.create_table(name, columns)
        return FuzzSchema.from_tables(tables), store

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_optimize_never_changes_verified_schema(self, context, seed):
        schema, store = context
        case = case_from_seed(seed, schema)
        catalog = ColumnStoreCatalog(store)
        before = verified_schema(case.plan, catalog)
        optimized = optimize_plan(case.plan, store)
        after = verified_schema(optimized, catalog)
        assert list(before) == list(after)
        assert before == after

    def test_verifier_self_check_corpus_is_green(self):
        from repro.plan.verify import run_self_check
        rows = run_self_check(verbose=False)  # raises AssertionError on a miss
        statuses = {status for _rule, status in rows}
        assert statuses == {"rejected", "ok", "caught"}
        assert ("rewrite-schema-drift", "caught") in rows
