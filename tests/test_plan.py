"""Tests for the shared expression AST, logical plans and optimizer."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.colstore import ColumnStore, ColumnTable, ColumnQuery, ColumnVector
from repro.colstore.planner import (
    ColumnStoreCatalog,
    explain_plan,
    optimize_plan,
    run_plan,
)
from repro.colstore.query import JoinedQuery, materialise_join
from repro.plan import (
    Aggregate,
    ColumnStats,
    Filter,
    Join,
    Opaque,
    Pivot,
    PlanCatalog,
    Project,
    Sample,
    Scan,
    and_,
    classify,
    col,
    estimate_selectivity,
    explain,
    lit,
    not_,
    optimize,
    ordered_conjuncts,
    split_conjuncts,
)
from repro.plan.optimizer import estimate_output_rows
from repro.relational import ColumnType, Database
from repro.relational.bridge import RelationalPlanCatalog, run_shared_plan


# --------------------------------------------------------------------------- #
# Expression AST
# --------------------------------------------------------------------------- #

class TestExpressions:
    def test_vectorised_evaluation_matches_row_binding(self):
        class _Schema:
            names = ("a", "b")

            def index_of(self, name):
                return list(self.names).index(name)

        expression = ((col("a") * 2 + 1) > col("b")) & ~(col("a") == lit(3))
        batch = {
            "a": np.array([0, 1, 2, 3, 4]),
            "b": np.array([10, 2, 4, 0, 3]),
        }
        vectorised = np.asarray(expression.evaluate(batch), dtype=bool)
        bound = expression.bind(_Schema())
        rows = list(zip(batch["a"].tolist(), batch["b"].tolist(), strict=True))
        np.testing.assert_array_equal(vectorised, [bool(bound(row)) for row in rows])

    def test_split_conjuncts_flattens_nesting(self):
        a, b, c, d = col("a") < 1, col("b") < 2, col("c") < 3, col("d") < 4
        parts = split_conjuncts((a & b) & (c & d))
        assert parts == [a, b, c, d]
        parts = split_conjuncts(and_(a, b, c))
        assert parts == [a, b, c]
        # Disjunctions stay intact — as a whole and inside a conjunction.
        assert len(split_conjuncts(a | b)) == 1
        parts = split_conjuncts(a & (b | c))
        assert len(parts) == 2 and parts[0] is a

    def test_isin_keeps_ndarrays_without_python_round_trip(self):
        keys = np.array([3, 1, 2, 2, 1], dtype=np.int64)
        expression = col("x").isin(keys)
        assert isinstance(expression.values, np.ndarray)
        np.testing.assert_array_equal(expression.key_array(), [1, 2, 3])
        # Mutating the caller's array must not leak into the expression.
        keys[:] = 0
        np.testing.assert_array_equal(expression.key_array(), [1, 2, 3])

    def test_classification_kinds(self):
        assert classify(col("x") < 5).kind == "range"
        assert classify(lit(5) > col("x")).kind == "range"
        assert classify(col("x") == 5).kind == "equality"
        assert classify(col("x") != 5).kind == "inequality"
        assert classify(col("x").isin([1, 2])).kind == "membership"
        assert classify(Opaque("x", lambda v: v > 0)).kind == "opaque"
        assert classify((col("x") < 5) | (col("x") > 9)).kind == "general"
        assert classify(col("x") < col("y")).column is None

    def test_not_and_or_evaluate(self):
        batch = {"x": np.array([1, 5, 9])}
        np.testing.assert_array_equal(
            not_(col("x") < 5).evaluate(batch), [False, True, True]
        )
        np.testing.assert_array_equal(
            ((col("x") < 2) | (col("x") > 8)).evaluate(batch), [True, False, True]
        )


class TestSelectivityEstimates:
    def test_range_uses_min_max(self):
        stats = ColumnStats(row_count=100, distinct=50, minimum=0.0, maximum=100.0)
        assert estimate_selectivity(classify(col("x") < 25), stats) == pytest.approx(0.25)
        assert estimate_selectivity(classify(col("x") >= 75), stats) == pytest.approx(0.25)
        assert estimate_selectivity(classify(col("x") < 1000), stats) == 1.0

    def test_equality_and_membership_use_distinct(self):
        stats = ColumnStats(row_count=1000, distinct=200, minimum=0, maximum=199)
        assert estimate_selectivity(classify(col("x") == 5), stats) == pytest.approx(1 / 200)
        member = classify(col("x").isin([1, 2, 3, 4]))
        assert estimate_selectivity(member, stats) == pytest.approx(4 / 200)

    def test_opaque_gets_default(self):
        stats = ColumnStats(row_count=10, distinct=2, minimum=0, maximum=1)
        assert estimate_selectivity(classify(Opaque("x", lambda v: v > 0)), stats) == pytest.approx(1 / 3)

    def test_opaque_is_an_ordering_barrier(self):
        # An earlier-written declarative guard must keep protecting a
        # later-written legacy callable: nothing moves across an opaque.
        stats = {"x": ColumnStats(1000, minimum=0.0, maximum=100.0)}
        guard = col("x") < 99            # unselective — would sort last
        callable_ = Opaque("x", lambda v: v > 0)
        selective = col("x") == 5        # selective — would sort first
        ordered = ordered_conjuncts(
            [guard, callable_, selective], lambda c: stats.get(c)
        )
        kinds = [predicate.kind for _, predicate, _ in ordered]
        assert kinds == ["range", "opaque", "equality"]

    def test_string_columns_get_no_range_bounds(self):
        # Lexicographic dictionary endpoints ('100' < '99') must not leak
        # into numeric range estimates.
        column = ColumnVector(
            "z", np.array(["100", "99", "99"]), encoding="dictionary"
        )
        stats = column.stats()
        assert stats.minimum is None and stats.maximum is None
        assert stats.distinct == 2

    def test_ordered_conjuncts_most_selective_first_and_stable(self):
        stats = {
            "a": ColumnStats(1000, distinct=1000),
            "b": ColumnStats(1000, minimum=0.0, maximum=100.0),
        }
        conjunction = (col("b") < 90) & (col("a") == 7) & (col("b") < 95)
        ordered = ordered_conjuncts([conjunction], lambda c: stats.get(c))
        kinds = [predicate.kind for _, predicate, _ in ordered]
        assert kinds == ["equality", "range", "range"]
        # The two range predicates keep their written order (stable ties? no —
        # 0.90 < 0.95, so written order coincides with selectivity order).
        estimates = [estimate for _, _, estimate in ordered]
        assert estimates == sorted(estimates)


# --------------------------------------------------------------------------- #
# Optimizer rules on logical plans
# --------------------------------------------------------------------------- #

class _DictCatalog(PlanCatalog):
    def __init__(self, columns, stats=None):
        self._columns = columns
        self._stats = stats or {}

    def columns_of(self, table):
        return self._columns.get(table)

    def stats_of(self, table, column):
        return self._stats.get((table, column))


class TestPlanRules:
    def test_conjunction_splits_pushes_and_prunes(self):
        catalog = _DictCatalog({
            "genes": ["gene_id", "target", "position", "length", "function"],
            "microarray": ["gene_id", "patient_id", "expression_value"],
        })
        plan = Pivot(
            Filter(
                Join(Scan("genes"), Scan("microarray"), "gene_id", "gene_id"),
                (col("function") < 10) & (col("expression_value") > 0.5),
            ),
            "patient_id", "gene_id", "expression_value",
        )
        optimized = optimize(plan, catalog)
        text = explain(optimized)
        assert text == (
            "Pivot rows=patient_id cols=gene_id value=expression_value\n"
            "  Join gene_id = gene_id\n"
            "    Project ['gene_id']\n"
            "      Filter (col('function') < lit(10))\n"
            "        Project ['gene_id', 'function']\n"
            "          Scan genes\n"
            "    Filter (col('expression_value') > lit(0.5))\n"
            "      Scan microarray"
        )

    def test_partial_conjuncts_stay_above_the_join(self):
        # A division conjunct must not move below the join: there it would
        # run on rows the join eliminates (e.g. a divisor of 0).
        catalog = _DictCatalog({
            "l": ["id", "a", "b"],
            "r": ["id", "w"],
        })
        plan = Filter(
            Join(Scan("l"), Scan("r"), "id", "id"),
            (col("b") / col("a") > 1) & (col("w") < 5),
        )
        optimized = optimize(plan, catalog)
        text = explain(optimized)
        lines = text.splitlines()
        # The total right-side conjunct pushed below; the division stayed up.
        assert lines[0].strip() == "Filter ((col('b') / col('a')) > lit(1))"
        assert "Join" in lines[1]
        assert any("(col('w') < lit(5))" in line and line.startswith("    ") for line in lines)

    def test_sample_is_a_pushdown_barrier(self):
        catalog = _DictCatalog({"t": ["a", "b"]})
        plan = Filter(Sample(Scan("t"), 0.5, seed=1), col("a") < 3)
        optimized = optimize(plan, catalog)
        assert isinstance(optimized, Filter)
        assert isinstance(optimized.child, Sample)

    def test_filters_reorder_by_selectivity(self):
        catalog = _DictCatalog(
            {"t": ["a", "b"]},
            {
                ("t", "a"): ColumnStats(1000, distinct=500),
                ("t", "b"): ColumnStats(1000, minimum=0.0, maximum=100.0),
            },
        )
        plan = Filter(Filter(Scan("t"), col("b") < 90), col("a") == 1)
        optimized = optimize(plan, catalog)
        # Innermost (executed first) must be the 1/500 equality, not the 90%
        # range filter the plan listed first.
        assert repr(optimized.predicate) == "(col('b') < lit(90))"
        assert repr(optimized.child.predicate) == "(col('a') = lit(1))"

    def test_projection_pruning_skips_full_width_scans(self):
        catalog = _DictCatalog({"t": ["a", "b"]})
        plan = Aggregate(Scan("t"), "a", "b", "mean")
        optimized = optimize(plan, catalog)
        assert isinstance(optimized.child, Scan)  # nothing to prune


# --------------------------------------------------------------------------- #
# The five GenBase data-management plans on the column store
# --------------------------------------------------------------------------- #

@pytest.fixture(scope="module")
def genbase_store(tiny_dataset) -> ColumnStore:
    store = ColumnStore("genbase")
    micro = tiny_dataset.microarray_relational()
    store.create_table(
        "microarray",
        {
            "gene_id": micro[:, 0].astype(np.int64),
            "patient_id": micro[:, 1].astype(np.int64),
            "expression_value": micro[:, 2],
        },
    )
    store.create_table(
        "genes",
        {
            "gene_id": tiny_dataset.genes.gene_id,
            "target": tiny_dataset.genes.target,
            "position": tiny_dataset.genes.position,
            "length": tiny_dataset.genes.length,
            "function": tiny_dataset.genes.function,
        },
    )
    store.create_table(
        "patients",
        {
            "patient_id": tiny_dataset.patients.patient_id,
            "age": tiny_dataset.patients.age,
            "gender": tiny_dataset.patients.gender,
            "zipcode": tiny_dataset.patients.zipcode,
            "disease_id": tiny_dataset.patients.disease_id,
            "drug_response": tiny_dataset.patients.drug_response,
        },
    )
    return store


def _gene_filter_pivot_plan(threshold):
    """Q1/Q4 data management: genes(function < t) ⋈ microarray → pivot."""
    return Pivot(
        Filter(
            Join(Scan("genes"), Scan("microarray"), "gene_id", "gene_id"),
            col("function") < threshold,
        ),
        "patient_id", "gene_id", "expression_value",
    )


def _patient_filter_pivot_plan(predicate):
    """Q2/Q3 data management: patients(pred) ⋈ microarray → pivot."""
    return Pivot(
        Filter(
            Join(Scan("patients"), Scan("microarray"), "patient_id", "patient_id"),
            predicate,
        ),
        "patient_id", "gene_id", "expression_value",
    )


class TestGenBasePlans:
    """Snapshot + equivalence tests: the rules fire on all five queries."""

    def test_q1_regression_plan_snapshot(self, genbase_store):
        # Pushdown onto the genes side, projection pruned *through* the
        # join (only the key crosses), build side chosen from statistics.
        optimized = optimize_plan(_gene_filter_pivot_plan(10), genbase_store)
        assert explain(optimized) == (
            "Pivot rows=patient_id cols=gene_id value=expression_value\n"
            "  Join gene_id = gene_id build=left\n"
            "    Project ['gene_id']\n"
            "      Filter (col('function') < lit(10))\n"
            "        Project ['gene_id', 'function']\n"
            "          Scan genes\n"
            "    Scan microarray"
        )

    def test_q2_covariance_plan_snapshot(self, genbase_store):
        plan = _patient_filter_pivot_plan(col("disease_id").isin([1, 3]))
        optimized = optimize_plan(plan, genbase_store)
        assert explain(optimized) == (
            "Pivot rows=patient_id cols=gene_id value=expression_value\n"
            "  Join patient_id = patient_id build=left\n"
            "    Project ['patient_id']\n"
            "      Filter col('disease_id').isin([1, 3])\n"
            "        Project ['patient_id', 'disease_id']\n"
            "          Scan patients\n"
            "    Scan microarray"
        )

    def test_q3_biclustering_plan_pushdown_and_reorder(self, genbase_store):
        plan = _patient_filter_pivot_plan(
            (col("age") < 40) & (col("gender") == 1)
        )
        optimized = optimize_plan(plan, genbase_store)
        text = explain(optimized)
        # Both conjuncts pushed below the join onto the patients side, the
        # scan pruned to the three referenced columns.
        assert "Join patient_id = patient_id" in text
        assert text.count("Filter") == 2
        assert "Project ['patient_id', 'age', 'gender']" in text
        # The filters sit in selectivity order: innermost (deepest) first.
        lines = [line.strip() for line in text.splitlines() if "Filter" in line]
        catalog = ColumnStoreCatalog(genbase_store)
        stats = {c: catalog.stats_of("patients", c) for c in ("age", "gender")}
        ordered = ordered_conjuncts(
            [(col("age") < 40) & (col("gender") == 1)], lambda c: stats.get(c)
        )
        # ordered[0] is most selective = executed first = deepest line.
        assert lines[-1] == f"Filter {ordered[0][0]!r}"

    def test_q4_svd_plan_snapshot(self, genbase_store):
        # Same DM shape as Q1 with the SVD threshold; rules must still fire.
        optimized = optimize_plan(_gene_filter_pivot_plan(25), genbase_store)
        text = explain(optimized)
        assert "Project ['gene_id', 'function']" in text
        assert text.splitlines()[3].strip().startswith("Filter")

    def test_q5_statistics_plan_snapshot(self, genbase_store):
        sampled = np.array([0, 2, 5], dtype=np.int64)
        plan = Aggregate(
            Filter(Scan("microarray"), col("patient_id").isin(sampled)),
            "gene_id", "expression_value", "mean",
        )
        optimized = optimize_plan(plan, genbase_store)
        assert explain(optimized) == (
            "Aggregate mean(expression_value) by gene_id\n"
            "  Filter col('patient_id').isin([0, 2, 5])\n"
            "    Scan microarray"
        )

    @pytest.mark.parametrize("build", [
        lambda: _gene_filter_pivot_plan(10),
        lambda: _patient_filter_pivot_plan(col("disease_id").isin([1, 3])),
        lambda: _patient_filter_pivot_plan((col("age") < 40) & (col("gender") == 1)),
        lambda: _gene_filter_pivot_plan(25),
    ])
    def test_optimized_pivot_plans_match_unoptimized(self, genbase_store, build):
        fast = run_plan(build(), genbase_store, optimized=True)
        slow = run_plan(build(), genbase_store, optimized=False)
        for fast_part, slow_part in zip(fast, slow, strict=True):
            np.testing.assert_array_equal(fast_part, slow_part)

    def test_optimized_aggregate_matches_unoptimized_and_query(self, genbase_store):
        sampled = np.array([0, 2, 5], dtype=np.int64)
        plan = Aggregate(
            Filter(Scan("microarray"), col("patient_id").isin(sampled)),
            "gene_id", "expression_value", "mean",
        )
        fast_keys, fast_values = run_plan(plan, genbase_store, optimized=True)
        slow_keys, slow_values = run_plan(plan, genbase_store, optimized=False)
        reference = (
            genbase_store.query("microarray")
            .where_in("patient_id", sampled)
            .group_aggregate("gene_id", "expression_value", "mean")
        )
        np.testing.assert_array_equal(fast_keys, slow_keys)
        np.testing.assert_array_equal(fast_values, slow_values)
        np.testing.assert_array_equal(fast_keys, reference[0])
        np.testing.assert_array_equal(fast_values, reference[1])

    def test_q5_shared_plan_builder_matches_reference(self, genbase_store):
        # The one-shot Q5 plan from repro.core.queries lowers to exactly the
        # membership-pushdown + compressed group-aggregate pipeline.
        from repro.core.queries import sampled_expression_mean_plan

        sampled = np.array([1, 3, 4], dtype=np.int64)
        keys, means = run_plan(sampled_expression_mean_plan(sampled), genbase_store)
        reference = (
            genbase_store.query("microarray")
            .where_in("patient_id", sampled)
            .group_aggregate("gene_id", "expression_value", "mean")
        )
        np.testing.assert_array_equal(keys, reference[0])
        np.testing.assert_array_equal(means, reference[1])

    def test_explain_plan_annotates_selectivities(self, genbase_store):
        optimized = optimize_plan(_gene_filter_pivot_plan(10), genbase_store)
        text = explain_plan(optimized, genbase_store)
        assert "~sel=" in text and "range" in text


# --------------------------------------------------------------------------- #
# Join build-side selection (rule + estimates)
# --------------------------------------------------------------------------- #

class TestJoinBuildSideRule:
    def _catalog(self, left_rows, right_rows):
        return _DictCatalog(
            {"l": ["id", "x"], "r": ["id", "y"]},
            {
                ("l", "id"): ColumnStats(left_rows),
                ("l", "x"): ColumnStats(left_rows),
                ("r", "id"): ColumnStats(right_rows),
                ("r", "y"): ColumnStats(right_rows),
            },
        )

    def test_smaller_side_builds(self):
        catalog = self._catalog(10_000, 100)
        assert optimize(Join(Scan("l"), Scan("r"), "id", "id"), catalog).build_side == "right"
        assert optimize(Join(Scan("r"), Scan("l"), "id", "id"), catalog).build_side == "left"

    def test_pushed_filter_shrinks_the_estimate(self):
        # Equal base cardinalities; the equality filter (estimated 1/10)
        # pushed onto the left input makes it the cheaper build side.
        catalog = self._catalog(1000, 1000)
        plan = Filter(Join(Scan("l"), Scan("r"), "id", "id"), col("x") == 5)
        optimized = optimize(plan, catalog)
        assert isinstance(optimized, Join)  # the filter moved below the join
        assert optimized.build_side == "left"

    def test_unknown_cardinality_stays_auto(self):
        catalog = _DictCatalog({"l": ["id"], "r": ["id"]})
        assert optimize(Join(Scan("l"), Scan("r"), "id", "id"), catalog).build_side == "auto"

    def test_forced_side_is_left_alone(self):
        catalog = self._catalog(10_000, 100)
        plan = Join(Scan("l"), Scan("r"), "id", "id", build_side="left")
        assert optimize(plan, catalog).build_side == "left"

    def test_estimate_output_rows_shapes(self):
        catalog = _DictCatalog(
            {"l": ["id"], "r": ["id"]},
            {
                ("l", "id"): ColumnStats(100, distinct=100),
                ("r", "id"): ColumnStats(5000, distinct=100),
            },
        )
        join = Join(Scan("l"), Scan("r"), "id", "id")
        # Foreign-key model: |L| * |R| / max(d(L.key), d(R.key)).
        assert estimate_output_rows(join, catalog) == pytest.approx(5000)
        assert estimate_output_rows(Sample(Scan("r"), 0.1), catalog) == pytest.approx(500)
        assert estimate_output_rows(Scan("missing"), catalog) is None
        assert estimate_output_rows(
            Filter(Scan("l"), col("id") == 3), catalog
        ) == pytest.approx(100 / 100)

    def test_build_side_overrides_runtime_length_comparison(self):
        # merge_join_positions honours a forced build side; the match set is
        # the same either way, only the output (probe-major) order changes.
        from repro.colstore.query import merge_join_positions

        left = np.array([1, 2, 2, 3], dtype=np.int64)
        right = np.array([2, 2, 3, 5, 1], dtype=np.int64)
        for build in ("auto", "left", "right"):
            left_pos, right_pos = merge_join_positions(left, right, build=build)
            pairs = sorted(zip(left_pos.tolist(), right_pos.tolist(), strict=True))
            assert pairs == [(0, 4), (1, 0), (1, 1), (2, 0), (2, 1), (3, 2)]
        with pytest.raises(ValueError):
            merge_join_positions(left, right, build="sideways")


# --------------------------------------------------------------------------- #
# Fused join → aggregate/pivot through the lazy JoinedQuery builder
# --------------------------------------------------------------------------- #

class TestFusedJoinQueries:
    def test_join_returns_lazy_builder(self, genbase_store):
        joined = genbase_store.query("genes").join(
            genbase_store.query("microarray"), "gene_id", "gene_id"
        )
        assert isinstance(joined, JoinedQuery)
        assert joined.output_columns[0] == "gene_id"
        assert "expression_value" in joined.output_columns

    def test_fused_pivot_matches_materialise_then_plan(self, genbase_store):
        genes = genbase_store.query("genes").where(col("function") < 10).select("gene_id")
        micro = genbase_store.query("microarray")
        fused = genes.join(micro, "gene_id", "gene_id")
        matrix, rows, cols = fused.pivot("patient_id", "gene_id", "expression_value")
        # The PR 1–3 hand-stitched path: materialise the (compressed) join
        # output, then plan the pivot over the new table.
        eager_table = materialise_join(
            genes, micro, "gene_id", "gene_id", compress=True
        )
        slow_matrix, slow_rows, slow_cols = ColumnQuery(eager_table).pivot(
            "patient_id", "gene_id", "expression_value"
        )
        np.testing.assert_array_equal(matrix, slow_matrix)
        np.testing.assert_array_equal(rows, slow_rows)
        np.testing.assert_array_equal(cols, slow_cols)

    def test_fused_aggregate_matches_materialise_then_plan(self, genbase_store):
        genes = genbase_store.query("genes").where(col("function") < 10).select("gene_id")
        micro = genbase_store.query("microarray")
        fused = genes.join(micro, "gene_id", "gene_id")
        eager = ColumnQuery(
            materialise_join(genes, micro, "gene_id", "gene_id", compress=True)
        )
        for function in ("count", "min", "max"):
            fast_keys, fast_values = fused.group_aggregate(
                "gene_id", "expression_value", function
            )
            slow_keys, slow_values = eager.group_aggregate(
                "gene_id", "expression_value", function
            )
            np.testing.assert_array_equal(fast_keys, slow_keys)
            np.testing.assert_array_equal(fast_values, slow_values)
        fast_keys, fast_means = fused.group_aggregate("gene_id", "expression_value")
        slow_keys, slow_means = eager.group_aggregate("gene_id", "expression_value")
        np.testing.assert_array_equal(fast_keys, slow_keys)
        # Float means: the eager path's re-encoded group column may fold RLE
        # runs (documented last-ulp reassociation caveat).
        np.testing.assert_allclose(fast_means, slow_means, rtol=1e-12)

    def test_joined_where_pushes_below_the_join(self, genbase_store):
        pre = (
            genbase_store.query("genes")
            .where(col("function") < 10)
            .join(genbase_store.query("microarray"), "gene_id", "gene_id")
            .collect("pre")
        )
        post_query = (
            genbase_store.query("genes")
            .join(genbase_store.query("microarray"), "gene_id", "gene_id")
            .where(col("function") < 10)
        )
        text = post_query.explain()
        lines = text.splitlines()
        join_depth = next(
            len(line) - len(line.lstrip()) for line in lines if "Join" in line
        )
        filter_line = next(line for line in lines if "Filter" in line)
        assert "function" in filter_line
        assert len(filter_line) - len(filter_line.lstrip()) > join_depth
        post = post_query.collect("post")
        assert post.column_names == pre.column_names
        for name in pre.column_names:
            np.testing.assert_array_equal(pre.values(name), post.values(name))

    def test_fused_join_with_sampled_input_binding(self, genbase_store):
        # A sampled input has a materialised base selection that cannot be
        # re-expressed declaratively — it must ride into the plan as a scan
        # binding, not get silently dropped.
        sampled = genbase_store.query("patients").sample(0.5, seed=3)
        micro = genbase_store.query("microarray")
        fused = sampled.join(micro, "patient_id", "patient_id").collect("s")
        eager = materialise_join(
            sampled, micro, "patient_id", "patient_id", compress=False
        )
        assert fused.column_names == eager.column_names
        for name in eager.column_names:
            np.testing.assert_array_equal(fused.values(name), eager.values(name))

    def test_renamed_outputs_and_errors(self, genbase_store):
        joined = genbase_store.query("genes").select("gene_id").join(
            genbase_store.query("microarray"),
            "gene_id",
            "gene_id",
            other_columns={"value": "expression_value"},
        )
        table = joined.collect("renamed")
        assert table.column_names == ["gene_id", "value"]
        keys, counts = joined.group_aggregate("gene_id", "value", "count")
        assert len(keys) == len(np.unique(table.values("gene_id")))
        assert counts.sum() == table.row_count
        with pytest.raises(ValueError, match="renamed"):
            joined.where(col("value") < 1)
        with pytest.raises(KeyError, match=r"missing.*join_result"):
            joined.pivot("missing", "gene_id", "value")

    def test_shared_source_names_across_sides_keep_output_ownership(self):
        # Regression: the plan layer gathers join columns by *source* name,
        # so when both sides produce an "x" the right copy would win.  Such
        # joins must fall back to the eager output-name-keyed path and keep
        # each output bound to its own side.
        left = ColumnQuery(ColumnTable.from_arrays(
            "l", {"k": np.array([1, 2, 3]), "x": np.array([10, 20, 30])}
        ))
        right = ColumnQuery(ColumnTable.from_arrays(
            "r", {"k": np.array([1, 2, 3]), "x": np.array([100, 200, 300])}
        ))
        joined = left.join(
            right, "k", "k",
            columns={"k": "k", "lx": "x"},
            other_columns={"rx": "x"},
        )
        table = joined.collect("both_sides")
        np.testing.assert_array_equal(table.values("lx"), [10, 20, 30])
        np.testing.assert_array_equal(table.values("rx"), [100, 200, 300])
        # Terminals resolve through the same fallback.
        keys, sums = joined.group_aggregate("k", "lx", "sum")
        np.testing.assert_array_equal(keys, [1, 2, 3])
        np.testing.assert_array_equal(sums, [10.0, 20.0, 30.0])
        assert "EagerJoin" in joined.explain()
        # Mapping only the left's copy must not let the right's leak in.
        left_only = left.join(
            right, "k", "k", columns={"k": "k", "lx": "x"}, other_columns={}
        )
        np.testing.assert_array_equal(
            left_only.collect().values("lx"), [10, 20, 30]
        )

    def test_join_explain_shows_pruning_and_build_side(self, genbase_store):
        text = (
            genbase_store.query("genes")
            .where(col("function") < 10)
            .select("gene_id")
            .join(genbase_store.query("microarray"), "gene_id", "gene_id")
            .explain()
        )
        assert "build=left" in text
        assert "Project ['gene_id']" in text  # only the key crosses the join


# --------------------------------------------------------------------------- #
# Shared plans on the row store (the bridge)
# --------------------------------------------------------------------------- #

@pytest.fixture()
def mini_db():
    db = Database("g")
    db.create_table(
        "genes", [("gene_id", ColumnType.INT), ("function", ColumnType.INT)]
    )
    db.load_array("genes", np.array([[0, 5], [1, 20], [2, 3], [3, 8]]))
    db.create_table(
        "microarray",
        [("gene_id", ColumnType.INT), ("patient_id", ColumnType.INT),
         ("expression_value", ColumnType.FLOAT)],
    )
    rows = [
        (g, p, float(10 * g + p))
        for p in range(3)
        for g in range(4)
    ]
    db.insert("microarray", rows)
    return db


class TestSharedPlansOnRowStore:
    def _plan(self, threshold=10):
        return Project(
            Filter(
                Join(Scan("genes"), Scan("microarray"), "gene_id", "gene_id"),
                col("function") < threshold,
            ),
            ("patient_id", "gene_id", "expression_value"),
        )

    def test_lowered_plan_matches_fluent_chain(self, mini_db):
        shared = run_shared_plan(self._plan(), mini_db)
        fluent = (
            mini_db.query("genes")
            .where(col("function") < lit(10))
            .select("gene_id")
            .join(mini_db.query("microarray"), on=("gene_id", "gene_id"))
            .select("patient_id", "gene_id", "expression_value")
            .run()
        )
        assert list(shared.schema.names) == list(fluent.schema.names)
        assert shared.rows == fluent.rows

    def test_unoptimized_lowering_matches_optimized(self, mini_db):
        fast = run_shared_plan(self._plan(), mini_db, optimized=True)
        slow = run_shared_plan(self._plan(), mini_db, optimized=False)
        assert sorted(fast.rows) == sorted(slow.rows)

    def test_forced_build_side_preserves_column_order(self, mini_db):
        base = Join(Scan("genes"), Scan("microarray"), "gene_id", "gene_id")
        rows_by_side = {}
        for side in ("left", "right"):
            plan = Project(
                Filter(replace(base, build_side=side), col("function") < 10),
                ("patient_id", "gene_id", "expression_value"),
            )
            result = run_shared_plan(plan, mini_db, optimized=False)
            assert list(result.schema.names) == [
                "patient_id", "gene_id", "expression_value"
            ]
            rows_by_side[side] = sorted(result.rows)
        assert rows_by_side["left"] == rows_by_side["right"]

    def test_shared_aggregate_matches_column_store(self, mini_db):
        store = ColumnStore("g")
        store.create_table(
            "microarray",
            {
                "gene_id": np.array([g for p in range(3) for g in range(4)], dtype=np.int64),
                "patient_id": np.array([p for p in range(3) for _ in range(4)], dtype=np.int64),
                "expression_value": np.array(
                    [float(10 * g + p) for p in range(3) for g in range(4)]
                ),
            },
        )
        plan = Aggregate(Scan("microarray"), "gene_id", "expression_value", "mean")
        row_keys, row_values = run_shared_plan(plan, mini_db)
        col_keys, col_values = run_plan(plan, store)
        np.testing.assert_array_equal(row_keys, col_keys)
        np.testing.assert_array_equal(row_values, col_values)

    def test_relational_catalog_exposes_row_counts(self, mini_db):
        catalog = RelationalPlanCatalog(mini_db)
        assert catalog.columns_of("genes") == ["gene_id", "function"]
        assert catalog.columns_of("nope") is None
        assert catalog.stats_of("genes", "function").row_count == 4
        assert catalog.stats_of("genes", "nope") is None
        assert catalog.row_count_of("microarray") == 12


# --------------------------------------------------------------------------- #
# Lazy ColumnQuery behaviour
# --------------------------------------------------------------------------- #

def _chain_table():
    rng = np.random.default_rng(5)
    n = 400
    return ColumnTable(
        "t",
        [
            ColumnVector("category", rng.integers(0, 50, n), encoding="dictionary"),
            ColumnVector("status", np.sort(rng.integers(0, 8, n)), encoding="rle"),
            ColumnVector("score", rng.random(n), encoding="plain"),
        ],
    )


class TestLazyColumnQuery:
    def test_legacy_guard_pattern_still_protects_callable(self):
        # Seed behaviour: a callable written after a filter only ever saw
        # the surviving values.  The optimizer must not hoist it — here the
        # guard estimates at ~1.0 selectivity (dictionary stats), so plain
        # selectivity sorting *would* run the 1/3-estimate callable first.
        table = ColumnTable(
            "t", [ColumnVector("x", np.arange(5), encoding="dictionary")]
        )

        def fragile(values):
            if (values == 0).any():
                raise AssertionError("guard was bypassed")
            return 10 % values == 0

        with pytest.warns(DeprecationWarning):
            query = ColumnQuery(table).where(col("x") > 0).where("x", fragile)
        np.testing.assert_array_equal(query.selection, [1, 2])  # x in {1, 2}

    def test_where_expression_matches_callable_shim(self):
        table = _chain_table()
        declarative = ColumnQuery(table).where(col("category") < 20)
        with pytest.warns(DeprecationWarning):
            shim = ColumnQuery(table).where("category", lambda v: v < 20)
        np.testing.assert_array_equal(declarative.selection, shim.selection)

    def test_selection_is_cached_and_filters_stack(self):
        table = _chain_table()
        query = ColumnQuery(table).where(
            (col("category") == 3) & (col("status") < 5) & (col("score") > 0.2)
        )
        values = table.column("category").values()
        status = table.column("status").values()
        score = table.column("score").values()
        expected = np.flatnonzero((values == 3) & (status < 5) & (score > 0.2))
        np.testing.assert_array_equal(query.selection, expected)
        assert query.selection is query.selection  # cached

    def test_explain_orders_most_selective_first(self):
        table = _chain_table()
        query = (
            ColumnQuery(table)
            .where(col("status") < 7)           # ~7/8 of rows
            .where(col("category") == 3)        # ~1/50 of rows
        )
        lines = query.explain().splitlines()
        assert "category" in lines[1] and "equality" in lines[1]
        assert "status" in lines[2] and "range" in lines[2]

    def test_select_and_collect_prune_columns(self):
        table = _chain_table()
        result = (
            ColumnQuery(table)
            .where(col("category") == 3)
            .select("score", "status")
            .collect("narrow")
        )
        assert result.column_names == ["score", "status"]
        with pytest.raises(KeyError, match="category"):
            result.column("category")

    def test_select_unknown_column_raises(self):
        table = _chain_table()
        with pytest.raises(KeyError, match="missing"):
            ColumnQuery(table).select("missing")

    def test_or_and_not_predicates_execute(self):
        table = _chain_table()
        values = table.column("category").values()
        query = ColumnQuery(table).where(
            (col("category") < 5) | ~(col("category") < 40)
        )
        expected = np.flatnonzero((values < 5) | ~(values < 40))
        np.testing.assert_array_equal(query.selection, expected)

    def test_multi_column_predicate(self):
        table = _chain_table()
        query = ColumnQuery(table).where(col("category") * 0.01 < col("score"))
        category = table.column("category").values()
        score = table.column("score").values()
        np.testing.assert_array_equal(
            query.selection, np.flatnonzero(category * 0.01 < score)
        )


class TestSampleComposition:
    """Regression: sampling must depend only on the selected row *set*."""

    def test_sample_ignores_prior_selection_order(self):
        table = _chain_table()
        first = (
            ColumnQuery(table)
            .where(col("status") < 5)
            .where(col("category") < 25)
            .sample(0.3, seed=9)
        )
        second = (
            ColumnQuery(table)
            .where(col("category") < 25)
            .where(col("status") < 5)
            .sample(0.3, seed=9)
        )
        np.testing.assert_array_equal(first.selection, second.selection)
        # Even an explicitly shuffled selection vector samples the same rows.
        base = ColumnQuery(table).where(col("category") < 25).selection
        shuffled = np.random.default_rng(0).permutation(base)
        from_sorted = ColumnQuery(table, np.sort(base)).sample(0.5, seed=4)
        from_shuffled = ColumnQuery(table, shuffled).sample(0.5, seed=4)
        np.testing.assert_array_equal(from_sorted.selection, from_shuffled.selection)

    def test_narrowing_after_sample_composes(self):
        table = _chain_table()
        sampled = ColumnQuery(table).where(col("status") < 5).sample(0.4, seed=2)
        narrowed = sampled.where(col("category") < 10)
        # Narrowing after the sample keeps exactly the sampled rows that
        # satisfy the new predicate — the sample never re-rolls.
        category = table.column("category").values()
        expected = sampled.selection[category[sampled.selection] < 10]
        np.testing.assert_array_equal(narrowed.selection, expected)

    def test_sample_seed_behaviour(self):
        table = _chain_table()
        query = ColumnQuery(table)
        np.testing.assert_array_equal(
            query.sample(0.2, seed=3).selection, query.sample(0.2, seed=3).selection
        )
        assert not np.array_equal(
            query.sample(0.2, seed=3).selection, query.sample(0.2, seed=4).selection
        )
        assert len(query.sample(0.25, seed=1)) == max(1, round(0.25 * len(query)))


# --------------------------------------------------------------------------- #
# Uniform unknown-column errors (colstore + relational)
# --------------------------------------------------------------------------- #

class TestUniformUnknownColumnErrors:
    def test_colstore_errors_name_column_and_table(self):
        table = _chain_table()
        query = ColumnQuery(table)
        cases = [
            lambda: query.where(col("missing") < 1),
            lambda: query.where("missing", lambda v: v > 0),
            lambda: query.where_in("missing", [1]),
            lambda: query.column("missing"),
            lambda: query.group_aggregate("missing", "score"),
            lambda: query.group_aggregate("category", "missing"),
            lambda: query.select("missing"),
            lambda: query.distinct("missing"),
            lambda: query.pivot("missing", "category", "score"),
        ]
        for case in cases:
            with pytest.raises(KeyError, match=r"missing.*'t'"):
                with np.errstate(all="ignore"):
                    case()

    def test_relational_errors_name_column_and_table(self):
        db = Database("g")
        db.create_table("people", [("id", ColumnType.INT), ("x", ColumnType.FLOAT)])
        db.load_array("people", np.array([[1, 0.5], [2, 1.5]]))
        query = db.query("people")
        cases = [
            lambda: query.where(col("missing") < 1),
            lambda: query.select("missing"),
            lambda: query.group_by(["missing"], [("count", "*", "n")]),
            lambda: query.group_by(["id"], [("avg", "missing", "m")]),
            lambda: query.order_by("missing"),
            lambda: query.join(db.query("people"), on=("missing", "id")),
            lambda: query.join(db.query("people"), on=("id", "missing")),
        ]
        for case in cases:
            with pytest.raises(KeyError, match=r"missing.*'people'"):
                case()

    def test_row_store_division_conjunct_not_pushed_below_join(self):
        # Regression: splitting a mixed conjunction must not push a partial
        # (division) conjunct below the join, where it would divide by the
        # a=0 row the join eliminates.
        db = Database("g")
        db.create_table("l", [("id", ColumnType.INT), ("a", ColumnType.INT),
                              ("b", ColumnType.INT)])
        db.load_array("l", np.array([[1, 2, 10], [2, 0, 5]]))
        db.create_table("r", [("id", ColumnType.INT), ("tag", ColumnType.INT)])
        db.load_array("r", np.array([[1, 7]]))
        rows = (
            db.query("l")
            .join(db.query("r"), on=("id", "id"))
            .where((col("tag") == lit(7)) & (col("b") / col("a") > lit(1)))
            .rows()
        )
        assert rows == [(1, 2, 10, 1, 7)]  # l.id, a, b, id_right, tag

    def test_valid_aggregates_still_pass_validation(self):
        db = Database("g")
        db.create_table("people", [("id", ColumnType.INT), ("x", ColumnType.FLOAT)])
        db.load_array("people", np.array([[1, 0.5], [2, 1.5]]))
        rows = db.query("people").group_by([], [("count", "*", "n")]).rows()
        assert rows == [(2,)]


# --------------------------------------------------------------------------- #
# Property tests: optimized execution is result-identical
# --------------------------------------------------------------------------- #

ENCODINGS = ("plain", "rle", "dictionary", "delta")

group_arrays = st.one_of(
    hnp.arrays(dtype=np.int64, shape=st.integers(0, 150), elements=st.integers(-50, 50)),
    hnp.arrays(dtype=np.int64, shape=st.integers(0, 150), elements=st.integers(-50, 50)).map(np.sort),
    hnp.arrays(dtype=np.int64, shape=st.integers(0, 150), elements=st.integers(-50, 50)).map(lambda a: a % 5),
)


def _build_tables(groups):
    """One compressed table per forced encoding plus the plain reference."""
    payload = np.arange(len(groups), dtype=np.int64)
    score = (groups * 7 % 11).astype(np.float64)
    tables = {}
    for encoding in ENCODINGS:
        tables[encoding] = ColumnTable(
            f"t_{encoding}",
            [
                ColumnVector("g", np.sort(groups) if encoding == "delta" else groups,
                             encoding=encoding),
                ColumnVector("payload", payload),
                ColumnVector("score", score),
            ],
        )
    return tables


class TestOptimizedExecutionProperties:
    @given(group_arrays, st.integers(-50, 50), st.integers(-50, 50), st.data())
    @settings(max_examples=40, deadline=None)
    def test_optimized_conjunction_identical_to_plain_decode(
        self, groups, low, high, data
    ):
        keys = data.draw(
            hnp.arrays(dtype=np.int64, shape=st.integers(0, 8),
                       elements=st.integers(-50, 50))
        )
        for encoding in ENCODINGS:
            column = np.sort(groups) if encoding == "delta" else groups
            table = ColumnTable(
                "t",
                [
                    ColumnVector("g", column, encoding=encoding),
                    ColumnVector("payload", np.arange(len(column), dtype=np.int64)),
                ],
            )
            predicates = [col("g") >= low, col("g") != high]
            expected = (column >= low) & (column != high)
            if keys.size:
                predicates.append(col("g").isin(keys))
                expected &= np.isin(column, keys)
            # Lazy, selectivity-ordered execution of the whole conjunction...
            query = ColumnQuery(table)
            for predicate in predicates:
                query = query.where(predicate)
            # ...must match the plain, decoded, written-order evaluation.
            np.testing.assert_array_equal(
                query.selection, np.flatnonzero(expected),
                err_msg=f"selection mismatch for {encoding}",
            )
            np.testing.assert_array_equal(
                query.column("payload"), np.flatnonzero(expected),
                err_msg=f"gather mismatch for {encoding}",
            )

    @given(group_arrays, st.integers(-50, 50))
    @settings(max_examples=30, deadline=None)
    def test_plan_execution_optimized_equals_unoptimized(self, groups, threshold):
        for encoding in ENCODINGS:
            column = np.sort(groups) if encoding == "delta" else groups
            store = ColumnStore("prop")
            store.register(ColumnTable(
                "t",
                [
                    ColumnVector("g", column, encoding=encoding),
                    ColumnVector("v", (column % 7).astype(np.float64)),
                ],
            ))
            plan = Aggregate(
                Filter(Scan("t"), (col("g") < threshold) & (col("g") != 0)),
                "g", "v", "sum",
            )
            fast = run_plan(plan, store, optimized=True)
            slow = run_plan(plan, store, optimized=False)
            mask = (column < threshold) & (column != 0)
            keys, inverse = np.unique(column[mask], return_inverse=True)
            expected = np.bincount(
                inverse, weights=(column[mask] % 7).astype(np.float64),
                minlength=len(keys),
            )
            np.testing.assert_array_equal(fast[0], slow[0])
            np.testing.assert_array_equal(fast[1], slow[1])
            np.testing.assert_array_equal(fast[0], keys)
            np.testing.assert_array_equal(fast[1], expected)


class TestFusedEquivalenceProperties:
    """Fused join → aggregate/pivot bit-identical to the hand-stitched path.

    Values are exactly-representable floats (integers), so even float sums
    are order-independent; the pivot's cell value is a pure function of its
    column key, so duplicate (row, column) pairs always write the same
    value and last-write-wins order cannot matter.
    """

    @given(group_arrays, st.data())
    @settings(max_examples=25, deadline=None)
    def test_fused_terminals_identical_to_eager_across_encodings(self, keys, data):
        right_keys = data.draw(
            hnp.arrays(dtype=np.int64, shape=st.integers(0, 100),
                       elements=st.integers(-50, 50))
        )
        for encoding in ENCODINGS:
            left_column = np.sort(keys) if encoding == "delta" else keys
            left_table = ColumnTable(
                "fused_l",
                [
                    ColumnVector("k", left_column, encoding=encoding),
                    ColumnVector("lv", (left_column * 3 % 13).astype(np.float64)),
                ],
            )
            right_table = ColumnTable(
                "fused_r",
                [
                    ColumnVector("k", right_keys),
                    ColumnVector("rv", np.arange(len(right_keys), dtype=np.float64)),
                ],
            )
            left = ColumnQuery(left_table)
            right = ColumnQuery(right_table)
            fused = left.join(right, "k", "k")
            eager = ColumnQuery(
                materialise_join(left, right, "k", "k", compress=True)
            )
            for function in ("count", "sum", "mean", "min", "max"):
                fast = fused.group_aggregate("k", "rv", function)
                slow = eager.group_aggregate("k", "rv", function)
                np.testing.assert_array_equal(fast[0], slow[0])
                np.testing.assert_array_equal(
                    fast[1], slow[1],
                    err_msg=f"{function} mismatch for {encoding}",
                )
            fast_pivot = fused.pivot("k", "rv", "rv")
            slow_pivot = eager.pivot("k", "rv", "rv")
            for fast_part, slow_part in zip(fast_pivot, slow_pivot, strict=True):
                np.testing.assert_array_equal(fast_part, slow_part)
