"""Tests for the shared expression AST, logical plans and optimizer."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.colstore import ColumnStore, ColumnTable, ColumnQuery, ColumnVector
from repro.colstore.planner import (
    ColumnStoreCatalog,
    explain_plan,
    optimize_plan,
    run_plan,
)
from repro.plan import (
    Aggregate,
    ColumnStats,
    Filter,
    Join,
    Opaque,
    Pivot,
    Sample,
    Scan,
    and_,
    classify,
    col,
    estimate_selectivity,
    explain,
    lit,
    not_,
    optimize,
    ordered_conjuncts,
    split_conjuncts,
)
from repro.relational import ColumnType, Database


# --------------------------------------------------------------------------- #
# Expression AST
# --------------------------------------------------------------------------- #

class TestExpressions:
    def test_vectorised_evaluation_matches_row_binding(self):
        class _Schema:
            names = ("a", "b")

            def index_of(self, name):
                return list(self.names).index(name)

        expression = ((col("a") * 2 + 1) > col("b")) & ~(col("a") == lit(3))
        batch = {
            "a": np.array([0, 1, 2, 3, 4]),
            "b": np.array([10, 2, 4, 0, 3]),
        }
        vectorised = np.asarray(expression.evaluate(batch), dtype=bool)
        bound = expression.bind(_Schema())
        rows = list(zip(batch["a"].tolist(), batch["b"].tolist()))
        np.testing.assert_array_equal(vectorised, [bool(bound(row)) for row in rows])

    def test_split_conjuncts_flattens_nesting(self):
        a, b, c, d = col("a") < 1, col("b") < 2, col("c") < 3, col("d") < 4
        parts = split_conjuncts((a & b) & (c & d))
        assert parts == [a, b, c, d]
        parts = split_conjuncts(and_(a, b, c))
        assert parts == [a, b, c]
        # Disjunctions stay intact — as a whole and inside a conjunction.
        assert len(split_conjuncts(a | b)) == 1
        parts = split_conjuncts(a & (b | c))
        assert len(parts) == 2 and parts[0] is a

    def test_isin_keeps_ndarrays_without_python_round_trip(self):
        keys = np.array([3, 1, 2, 2, 1], dtype=np.int64)
        expression = col("x").isin(keys)
        assert isinstance(expression.values, np.ndarray)
        np.testing.assert_array_equal(expression.key_array(), [1, 2, 3])
        # Mutating the caller's array must not leak into the expression.
        keys[:] = 0
        np.testing.assert_array_equal(expression.key_array(), [1, 2, 3])

    def test_classification_kinds(self):
        assert classify(col("x") < 5).kind == "range"
        assert classify(lit(5) > col("x")).kind == "range"
        assert classify(col("x") == 5).kind == "equality"
        assert classify(col("x") != 5).kind == "inequality"
        assert classify(col("x").isin([1, 2])).kind == "membership"
        assert classify(Opaque("x", lambda v: v > 0)).kind == "opaque"
        assert classify((col("x") < 5) | (col("x") > 9)).kind == "general"
        assert classify(col("x") < col("y")).column is None

    def test_not_and_or_evaluate(self):
        batch = {"x": np.array([1, 5, 9])}
        np.testing.assert_array_equal(
            not_(col("x") < 5).evaluate(batch), [False, True, True]
        )
        np.testing.assert_array_equal(
            ((col("x") < 2) | (col("x") > 8)).evaluate(batch), [True, False, True]
        )


class TestSelectivityEstimates:
    def test_range_uses_min_max(self):
        stats = ColumnStats(row_count=100, distinct=50, minimum=0.0, maximum=100.0)
        assert estimate_selectivity(classify(col("x") < 25), stats) == pytest.approx(0.25)
        assert estimate_selectivity(classify(col("x") >= 75), stats) == pytest.approx(0.25)
        assert estimate_selectivity(classify(col("x") < 1000), stats) == 1.0

    def test_equality_and_membership_use_distinct(self):
        stats = ColumnStats(row_count=1000, distinct=200, minimum=0, maximum=199)
        assert estimate_selectivity(classify(col("x") == 5), stats) == pytest.approx(1 / 200)
        member = classify(col("x").isin([1, 2, 3, 4]))
        assert estimate_selectivity(member, stats) == pytest.approx(4 / 200)

    def test_opaque_gets_default(self):
        stats = ColumnStats(row_count=10, distinct=2, minimum=0, maximum=1)
        assert estimate_selectivity(classify(Opaque("x", lambda v: v > 0)), stats) == pytest.approx(1 / 3)

    def test_opaque_is_an_ordering_barrier(self):
        # An earlier-written declarative guard must keep protecting a
        # later-written legacy callable: nothing moves across an opaque.
        stats = {"x": ColumnStats(1000, minimum=0.0, maximum=100.0)}
        guard = col("x") < 99            # unselective — would sort last
        callable_ = Opaque("x", lambda v: v > 0)
        selective = col("x") == 5        # selective — would sort first
        ordered = ordered_conjuncts(
            [guard, callable_, selective], lambda c: stats.get(c)
        )
        kinds = [predicate.kind for _, predicate, _ in ordered]
        assert kinds == ["range", "opaque", "equality"]

    def test_string_columns_get_no_range_bounds(self):
        # Lexicographic dictionary endpoints ('100' < '99') must not leak
        # into numeric range estimates.
        column = ColumnVector(
            "z", np.array(["100", "99", "99"]), encoding="dictionary"
        )
        stats = column.stats()
        assert stats.minimum is None and stats.maximum is None
        assert stats.distinct == 2

    def test_ordered_conjuncts_most_selective_first_and_stable(self):
        stats = {
            "a": ColumnStats(1000, distinct=1000),
            "b": ColumnStats(1000, minimum=0.0, maximum=100.0),
        }
        conjunction = (col("b") < 90) & (col("a") == 7) & (col("b") < 95)
        ordered = ordered_conjuncts([conjunction], lambda c: stats.get(c))
        kinds = [predicate.kind for _, predicate, _ in ordered]
        assert kinds == ["equality", "range", "range"]
        # The two range predicates keep their written order (stable ties? no —
        # 0.90 < 0.95, so written order coincides with selectivity order).
        estimates = [estimate for _, _, estimate in ordered]
        assert estimates == sorted(estimates)


# --------------------------------------------------------------------------- #
# Optimizer rules on logical plans
# --------------------------------------------------------------------------- #

class _DictCatalog:
    def __init__(self, columns, stats=None):
        self._columns = columns
        self._stats = stats or {}

    def columns_of(self, table):
        return self._columns.get(table)

    def stats_of(self, table, column):
        return self._stats.get((table, column))


class TestPlanRules:
    def test_conjunction_splits_pushes_and_prunes(self):
        catalog = _DictCatalog({
            "genes": ["gene_id", "target", "position", "length", "function"],
            "microarray": ["gene_id", "patient_id", "expression_value"],
        })
        plan = Pivot(
            Filter(
                Join(Scan("genes"), Scan("microarray"), "gene_id", "gene_id"),
                (col("function") < 10) & (col("expression_value") > 0.5),
            ),
            "patient_id", "gene_id", "expression_value",
        )
        optimized = optimize(plan, catalog)
        text = explain(optimized)
        assert text == (
            "Pivot rows=patient_id cols=gene_id value=expression_value\n"
            "  Join gene_id = gene_id\n"
            "    Filter (col('function') < lit(10))\n"
            "      Project ['gene_id', 'function']\n"
            "        Scan genes\n"
            "    Filter (col('expression_value') > lit(0.5))\n"
            "      Scan microarray"
        )

    def test_partial_conjuncts_stay_above_the_join(self):
        # A division conjunct must not move below the join: there it would
        # run on rows the join eliminates (e.g. a divisor of 0).
        catalog = _DictCatalog({
            "l": ["id", "a", "b"],
            "r": ["id", "w"],
        })
        plan = Filter(
            Join(Scan("l"), Scan("r"), "id", "id"),
            (col("b") / col("a") > 1) & (col("w") < 5),
        )
        optimized = optimize(plan, catalog)
        text = explain(optimized)
        lines = text.splitlines()
        # The total right-side conjunct pushed below; the division stayed up.
        assert lines[0].strip() == "Filter ((col('b') / col('a')) > lit(1))"
        assert "Join" in lines[1]
        assert any("(col('w') < lit(5))" in line and line.startswith("    ") for line in lines)

    def test_sample_is_a_pushdown_barrier(self):
        catalog = _DictCatalog({"t": ["a", "b"]})
        plan = Filter(Sample(Scan("t"), 0.5, seed=1), col("a") < 3)
        optimized = optimize(plan, catalog)
        assert isinstance(optimized, Filter)
        assert isinstance(optimized.child, Sample)

    def test_filters_reorder_by_selectivity(self):
        catalog = _DictCatalog(
            {"t": ["a", "b"]},
            {
                ("t", "a"): ColumnStats(1000, distinct=500),
                ("t", "b"): ColumnStats(1000, minimum=0.0, maximum=100.0),
            },
        )
        plan = Filter(Filter(Scan("t"), col("b") < 90), col("a") == 1)
        optimized = optimize(plan, catalog)
        # Innermost (executed first) must be the 1/500 equality, not the 90%
        # range filter the plan listed first.
        assert repr(optimized.predicate) == "(col('b') < lit(90))"
        assert repr(optimized.child.predicate) == "(col('a') = lit(1))"

    def test_projection_pruning_skips_full_width_scans(self):
        catalog = _DictCatalog({"t": ["a", "b"]})
        plan = Aggregate(Scan("t"), "a", "b", "mean")
        optimized = optimize(plan, catalog)
        assert isinstance(optimized.child, Scan)  # nothing to prune


# --------------------------------------------------------------------------- #
# The five GenBase data-management plans on the column store
# --------------------------------------------------------------------------- #

@pytest.fixture(scope="module")
def genbase_store(tiny_dataset) -> ColumnStore:
    store = ColumnStore("genbase")
    micro = tiny_dataset.microarray_relational()
    store.create_table(
        "microarray",
        {
            "gene_id": micro[:, 0].astype(np.int64),
            "patient_id": micro[:, 1].astype(np.int64),
            "expression_value": micro[:, 2],
        },
    )
    store.create_table(
        "genes",
        {
            "gene_id": tiny_dataset.genes.gene_id,
            "target": tiny_dataset.genes.target,
            "position": tiny_dataset.genes.position,
            "length": tiny_dataset.genes.length,
            "function": tiny_dataset.genes.function,
        },
    )
    store.create_table(
        "patients",
        {
            "patient_id": tiny_dataset.patients.patient_id,
            "age": tiny_dataset.patients.age,
            "gender": tiny_dataset.patients.gender,
            "zipcode": tiny_dataset.patients.zipcode,
            "disease_id": tiny_dataset.patients.disease_id,
            "drug_response": tiny_dataset.patients.drug_response,
        },
    )
    return store


def _gene_filter_pivot_plan(threshold):
    """Q1/Q4 data management: genes(function < t) ⋈ microarray → pivot."""
    return Pivot(
        Filter(
            Join(Scan("genes"), Scan("microarray"), "gene_id", "gene_id"),
            col("function") < threshold,
        ),
        "patient_id", "gene_id", "expression_value",
    )


def _patient_filter_pivot_plan(predicate):
    """Q2/Q3 data management: patients(pred) ⋈ microarray → pivot."""
    return Pivot(
        Filter(
            Join(Scan("patients"), Scan("microarray"), "patient_id", "patient_id"),
            predicate,
        ),
        "patient_id", "gene_id", "expression_value",
    )


class TestGenBasePlans:
    """Snapshot + equivalence tests: the rules fire on all five queries."""

    def test_q1_regression_plan_snapshot(self, genbase_store):
        optimized = optimize_plan(_gene_filter_pivot_plan(10), genbase_store)
        assert explain(optimized) == (
            "Pivot rows=patient_id cols=gene_id value=expression_value\n"
            "  Join gene_id = gene_id\n"
            "    Filter (col('function') < lit(10))\n"
            "      Project ['gene_id', 'function']\n"
            "        Scan genes\n"
            "    Scan microarray"
        )

    def test_q2_covariance_plan_snapshot(self, genbase_store):
        plan = _patient_filter_pivot_plan(col("disease_id").isin([1, 3]))
        optimized = optimize_plan(plan, genbase_store)
        assert explain(optimized) == (
            "Pivot rows=patient_id cols=gene_id value=expression_value\n"
            "  Join patient_id = patient_id\n"
            "    Filter col('disease_id').isin([1, 3])\n"
            "      Project ['patient_id', 'disease_id']\n"
            "        Scan patients\n"
            "    Scan microarray"
        )

    def test_q3_biclustering_plan_pushdown_and_reorder(self, genbase_store):
        plan = _patient_filter_pivot_plan(
            (col("age") < 40) & (col("gender") == 1)
        )
        optimized = optimize_plan(plan, genbase_store)
        text = explain(optimized)
        # Both conjuncts pushed below the join onto the patients side, the
        # scan pruned to the three referenced columns.
        assert "Join patient_id = patient_id" in text
        assert text.count("Filter") == 2
        assert "Project ['patient_id', 'age', 'gender']" in text
        # The filters sit in selectivity order: innermost (deepest) first.
        lines = [line.strip() for line in text.splitlines() if "Filter" in line]
        catalog = ColumnStoreCatalog(genbase_store)
        stats = {c: catalog.stats_of("patients", c) for c in ("age", "gender")}
        ordered = ordered_conjuncts(
            [(col("age") < 40) & (col("gender") == 1)], lambda c: stats.get(c)
        )
        # ordered[0] is most selective = executed first = deepest line.
        assert lines[-1] == f"Filter {ordered[0][0]!r}"

    def test_q4_svd_plan_snapshot(self, genbase_store):
        # Same DM shape as Q1 with the SVD threshold; rules must still fire.
        optimized = optimize_plan(_gene_filter_pivot_plan(25), genbase_store)
        text = explain(optimized)
        assert "Project ['gene_id', 'function']" in text
        assert text.splitlines()[2].strip().startswith("Filter")

    def test_q5_statistics_plan_snapshot(self, genbase_store):
        sampled = np.array([0, 2, 5], dtype=np.int64)
        plan = Aggregate(
            Filter(Scan("microarray"), col("patient_id").isin(sampled)),
            "gene_id", "expression_value", "mean",
        )
        optimized = optimize_plan(plan, genbase_store)
        assert explain(optimized) == (
            "Aggregate mean(expression_value) by gene_id\n"
            "  Filter col('patient_id').isin([0, 2, 5])\n"
            "    Scan microarray"
        )

    @pytest.mark.parametrize("build", [
        lambda: _gene_filter_pivot_plan(10),
        lambda: _patient_filter_pivot_plan(col("disease_id").isin([1, 3])),
        lambda: _patient_filter_pivot_plan((col("age") < 40) & (col("gender") == 1)),
        lambda: _gene_filter_pivot_plan(25),
    ])
    def test_optimized_pivot_plans_match_unoptimized(self, genbase_store, build):
        fast = run_plan(build(), genbase_store, optimized=True)
        slow = run_plan(build(), genbase_store, optimized=False)
        for fast_part, slow_part in zip(fast, slow):
            np.testing.assert_array_equal(fast_part, slow_part)

    def test_optimized_aggregate_matches_unoptimized_and_query(self, genbase_store):
        sampled = np.array([0, 2, 5], dtype=np.int64)
        plan = Aggregate(
            Filter(Scan("microarray"), col("patient_id").isin(sampled)),
            "gene_id", "expression_value", "mean",
        )
        fast_keys, fast_values = run_plan(plan, genbase_store, optimized=True)
        slow_keys, slow_values = run_plan(plan, genbase_store, optimized=False)
        reference = (
            genbase_store.query("microarray")
            .where_in("patient_id", sampled)
            .group_aggregate("gene_id", "expression_value", "mean")
        )
        np.testing.assert_array_equal(fast_keys, slow_keys)
        np.testing.assert_array_equal(fast_values, slow_values)
        np.testing.assert_array_equal(fast_keys, reference[0])
        np.testing.assert_array_equal(fast_values, reference[1])

    def test_explain_plan_annotates_selectivities(self, genbase_store):
        optimized = optimize_plan(_gene_filter_pivot_plan(10), genbase_store)
        text = explain_plan(optimized, genbase_store)
        assert "~sel=" in text and "range" in text


# --------------------------------------------------------------------------- #
# Lazy ColumnQuery behaviour
# --------------------------------------------------------------------------- #

def _chain_table():
    rng = np.random.default_rng(5)
    n = 400
    return ColumnTable(
        "t",
        [
            ColumnVector("category", rng.integers(0, 50, n), encoding="dictionary"),
            ColumnVector("status", np.sort(rng.integers(0, 8, n)), encoding="rle"),
            ColumnVector("score", rng.random(n), encoding="plain"),
        ],
    )


class TestLazyColumnQuery:
    def test_legacy_guard_pattern_still_protects_callable(self):
        # Seed behaviour: a callable written after a filter only ever saw
        # the surviving values.  The optimizer must not hoist it — here the
        # guard estimates at ~1.0 selectivity (dictionary stats), so plain
        # selectivity sorting *would* run the 1/3-estimate callable first.
        table = ColumnTable(
            "t", [ColumnVector("x", np.arange(5), encoding="dictionary")]
        )

        def fragile(values):
            if (values == 0).any():
                raise AssertionError("guard was bypassed")
            return 10 % values == 0

        with pytest.warns(DeprecationWarning):
            query = ColumnQuery(table).where(col("x") > 0).where("x", fragile)
        np.testing.assert_array_equal(query.selection, [1, 2])  # x in {1, 2}

    def test_where_expression_matches_callable_shim(self):
        table = _chain_table()
        declarative = ColumnQuery(table).where(col("category") < 20)
        with pytest.warns(DeprecationWarning):
            shim = ColumnQuery(table).where("category", lambda v: v < 20)
        np.testing.assert_array_equal(declarative.selection, shim.selection)

    def test_selection_is_cached_and_filters_stack(self):
        table = _chain_table()
        query = ColumnQuery(table).where(
            (col("category") == 3) & (col("status") < 5) & (col("score") > 0.2)
        )
        values = table.column("category").values()
        status = table.column("status").values()
        score = table.column("score").values()
        expected = np.flatnonzero((values == 3) & (status < 5) & (score > 0.2))
        np.testing.assert_array_equal(query.selection, expected)
        assert query.selection is query.selection  # cached

    def test_explain_orders_most_selective_first(self):
        table = _chain_table()
        query = (
            ColumnQuery(table)
            .where(col("status") < 7)           # ~7/8 of rows
            .where(col("category") == 3)        # ~1/50 of rows
        )
        lines = query.explain().splitlines()
        assert "category" in lines[1] and "equality" in lines[1]
        assert "status" in lines[2] and "range" in lines[2]

    def test_select_and_collect_prune_columns(self):
        table = _chain_table()
        result = (
            ColumnQuery(table)
            .where(col("category") == 3)
            .select("score", "status")
            .collect("narrow")
        )
        assert result.column_names == ["score", "status"]
        with pytest.raises(KeyError, match="category"):
            result.column("category")

    def test_select_unknown_column_raises(self):
        table = _chain_table()
        with pytest.raises(KeyError, match="missing"):
            ColumnQuery(table).select("missing")

    def test_or_and_not_predicates_execute(self):
        table = _chain_table()
        values = table.column("category").values()
        query = ColumnQuery(table).where(
            (col("category") < 5) | ~(col("category") < 40)
        )
        expected = np.flatnonzero((values < 5) | ~(values < 40))
        np.testing.assert_array_equal(query.selection, expected)

    def test_multi_column_predicate(self):
        table = _chain_table()
        query = ColumnQuery(table).where(col("category") * 0.01 < col("score"))
        category = table.column("category").values()
        score = table.column("score").values()
        np.testing.assert_array_equal(
            query.selection, np.flatnonzero(category * 0.01 < score)
        )


class TestSampleComposition:
    """Regression: sampling must depend only on the selected row *set*."""

    def test_sample_ignores_prior_selection_order(self):
        table = _chain_table()
        first = (
            ColumnQuery(table)
            .where(col("status") < 5)
            .where(col("category") < 25)
            .sample(0.3, seed=9)
        )
        second = (
            ColumnQuery(table)
            .where(col("category") < 25)
            .where(col("status") < 5)
            .sample(0.3, seed=9)
        )
        np.testing.assert_array_equal(first.selection, second.selection)
        # Even an explicitly shuffled selection vector samples the same rows.
        base = ColumnQuery(table).where(col("category") < 25).selection
        shuffled = np.random.default_rng(0).permutation(base)
        from_sorted = ColumnQuery(table, np.sort(base)).sample(0.5, seed=4)
        from_shuffled = ColumnQuery(table, shuffled).sample(0.5, seed=4)
        np.testing.assert_array_equal(from_sorted.selection, from_shuffled.selection)

    def test_narrowing_after_sample_composes(self):
        table = _chain_table()
        sampled = ColumnQuery(table).where(col("status") < 5).sample(0.4, seed=2)
        narrowed = sampled.where(col("category") < 10)
        # Narrowing after the sample keeps exactly the sampled rows that
        # satisfy the new predicate — the sample never re-rolls.
        category = table.column("category").values()
        expected = sampled.selection[category[sampled.selection] < 10]
        np.testing.assert_array_equal(narrowed.selection, expected)

    def test_sample_seed_behaviour(self):
        table = _chain_table()
        query = ColumnQuery(table)
        np.testing.assert_array_equal(
            query.sample(0.2, seed=3).selection, query.sample(0.2, seed=3).selection
        )
        assert not np.array_equal(
            query.sample(0.2, seed=3).selection, query.sample(0.2, seed=4).selection
        )
        assert len(query.sample(0.25, seed=1)) == max(1, round(0.25 * len(query)))


# --------------------------------------------------------------------------- #
# Uniform unknown-column errors (colstore + relational)
# --------------------------------------------------------------------------- #

class TestUniformUnknownColumnErrors:
    def test_colstore_errors_name_column_and_table(self):
        table = _chain_table()
        query = ColumnQuery(table)
        cases = [
            lambda: query.where(col("missing") < 1),
            lambda: query.where("missing", lambda v: v > 0),
            lambda: query.where_in("missing", [1]),
            lambda: query.column("missing"),
            lambda: query.group_aggregate("missing", "score"),
            lambda: query.group_aggregate("category", "missing"),
            lambda: query.select("missing"),
            lambda: query.distinct("missing"),
            lambda: query.pivot("missing", "category", "score"),
        ]
        for case in cases:
            with pytest.raises(KeyError, match=r"missing.*'t'"):
                with np.errstate(all="ignore"):
                    case()

    def test_relational_errors_name_column_and_table(self):
        db = Database("g")
        db.create_table("people", [("id", ColumnType.INT), ("x", ColumnType.FLOAT)])
        db.load_array("people", np.array([[1, 0.5], [2, 1.5]]))
        query = db.query("people")
        cases = [
            lambda: query.where(col("missing") < 1),
            lambda: query.select("missing"),
            lambda: query.group_by(["missing"], [("count", "*", "n")]),
            lambda: query.group_by(["id"], [("avg", "missing", "m")]),
            lambda: query.order_by("missing"),
            lambda: query.join(db.query("people"), on=("missing", "id")),
            lambda: query.join(db.query("people"), on=("id", "missing")),
        ]
        for case in cases:
            with pytest.raises(KeyError, match=r"missing.*'people'"):
                case()

    def test_row_store_division_conjunct_not_pushed_below_join(self):
        # Regression: splitting a mixed conjunction must not push a partial
        # (division) conjunct below the join, where it would divide by the
        # a=0 row the join eliminates.
        db = Database("g")
        db.create_table("l", [("id", ColumnType.INT), ("a", ColumnType.INT),
                              ("b", ColumnType.INT)])
        db.load_array("l", np.array([[1, 2, 10], [2, 0, 5]]))
        db.create_table("r", [("id", ColumnType.INT), ("tag", ColumnType.INT)])
        db.load_array("r", np.array([[1, 7]]))
        rows = (
            db.query("l")
            .join(db.query("r"), on=("id", "id"))
            .where((col("tag") == lit(7)) & (col("b") / col("a") > lit(1)))
            .rows()
        )
        assert rows == [(1, 2, 10, 1, 7)]  # l.id, a, b, id_right, tag

    def test_valid_aggregates_still_pass_validation(self):
        db = Database("g")
        db.create_table("people", [("id", ColumnType.INT), ("x", ColumnType.FLOAT)])
        db.load_array("people", np.array([[1, 0.5], [2, 1.5]]))
        rows = db.query("people").group_by([], [("count", "*", "n")]).rows()
        assert rows == [(2,)]


# --------------------------------------------------------------------------- #
# Property tests: optimized execution is result-identical
# --------------------------------------------------------------------------- #

ENCODINGS = ("plain", "rle", "dictionary", "delta")

group_arrays = st.one_of(
    hnp.arrays(dtype=np.int64, shape=st.integers(0, 150), elements=st.integers(-50, 50)),
    hnp.arrays(dtype=np.int64, shape=st.integers(0, 150), elements=st.integers(-50, 50)).map(np.sort),
    hnp.arrays(dtype=np.int64, shape=st.integers(0, 150), elements=st.integers(-50, 50)).map(lambda a: a % 5),
)


def _build_tables(groups):
    """One compressed table per forced encoding plus the plain reference."""
    payload = np.arange(len(groups), dtype=np.int64)
    score = (groups * 7 % 11).astype(np.float64)
    tables = {}
    for encoding in ENCODINGS:
        tables[encoding] = ColumnTable(
            f"t_{encoding}",
            [
                ColumnVector("g", np.sort(groups) if encoding == "delta" else groups,
                             encoding=encoding),
                ColumnVector("payload", payload),
                ColumnVector("score", score),
            ],
        )
    return tables


class TestOptimizedExecutionProperties:
    @given(group_arrays, st.integers(-50, 50), st.integers(-50, 50), st.data())
    @settings(max_examples=40, deadline=None)
    def test_optimized_conjunction_identical_to_plain_decode(
        self, groups, low, high, data
    ):
        keys = data.draw(
            hnp.arrays(dtype=np.int64, shape=st.integers(0, 8),
                       elements=st.integers(-50, 50))
        )
        for encoding in ENCODINGS:
            column = np.sort(groups) if encoding == "delta" else groups
            table = ColumnTable(
                "t",
                [
                    ColumnVector("g", column, encoding=encoding),
                    ColumnVector("payload", np.arange(len(column), dtype=np.int64)),
                ],
            )
            predicates = [col("g") >= low, col("g") != high]
            expected = (column >= low) & (column != high)
            if keys.size:
                predicates.append(col("g").isin(keys))
                expected &= np.isin(column, keys)
            # Lazy, selectivity-ordered execution of the whole conjunction...
            query = ColumnQuery(table)
            for predicate in predicates:
                query = query.where(predicate)
            # ...must match the plain, decoded, written-order evaluation.
            np.testing.assert_array_equal(
                query.selection, np.flatnonzero(expected),
                err_msg=f"selection mismatch for {encoding}",
            )
            np.testing.assert_array_equal(
                query.column("payload"), np.flatnonzero(expected),
                err_msg=f"gather mismatch for {encoding}",
            )

    @given(group_arrays, st.integers(-50, 50))
    @settings(max_examples=30, deadline=None)
    def test_plan_execution_optimized_equals_unoptimized(self, groups, threshold):
        for encoding in ENCODINGS:
            column = np.sort(groups) if encoding == "delta" else groups
            store = ColumnStore("prop")
            store.register(ColumnTable(
                "t",
                [
                    ColumnVector("g", column, encoding=encoding),
                    ColumnVector("v", (column % 7).astype(np.float64)),
                ],
            ))
            plan = Aggregate(
                Filter(Scan("t"), (col("g") < threshold) & (col("g") != 0)),
                "g", "v", "sum",
            )
            fast = run_plan(plan, store, optimized=True)
            slow = run_plan(plan, store, optimized=False)
            mask = (column < threshold) & (column != 0)
            keys, inverse = np.unique(column[mask], return_inverse=True)
            expected = np.bincount(
                inverse, weights=(column[mask] % 7).astype(np.float64),
                minlength=len(keys),
            )
            np.testing.assert_array_equal(fast[0], slow[0])
            np.testing.assert_array_equal(fast[1], slow[1])
            np.testing.assert_array_equal(fast[0], keys)
            np.testing.assert_array_equal(fast[1], expected)
