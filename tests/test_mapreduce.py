"""Tests for the MapReduce engine, the Hive layer and the Mahout layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mapreduce import HiveSession, HiveTable, Mahout, MapReduceEngine, MapReduceJob
from repro.plan import col


def word_count_job() -> MapReduceJob:
    def mapper(line):
        for word in line.split():
            yield (word, 1)

    def reducer(word, counts):
        yield (word, sum(counts))

    return MapReduceJob("wordcount", mapper, reducer, combiner=reducer)


class TestEngine:
    def test_word_count(self):
        engine = MapReduceEngine(n_splits=3)
        output = dict(engine.run(word_count_job(), ["a b a", "b c", "a"]))
        assert output == {"a": 3, "b": 2, "c": 1}

    def test_counters_populated(self):
        engine = MapReduceEngine(n_splits=2)
        engine.run(word_count_job(), ["x y", "y z", "z z"])
        counters = engine.history[-1].counters
        assert counters.map_input_records == 3
        assert counters.map_output_records == 6
        assert counters.reduce_input_groups == 3
        assert counters.shuffle_bytes > 0
        assert counters.splits == 2
        assert "map_input_records" in counters.as_dict()

    def test_combiner_reduces_shuffle_volume(self):
        records = ["a a a a a a a a"] * 20
        with_combiner = MapReduceEngine(n_splits=2)
        with_combiner.run(word_count_job(), records)
        job = word_count_job()
        without = MapReduceEngine(n_splits=2)
        without.run(MapReduceJob("nc", job.mapper, job.reducer, combiner=None), records)
        assert (
            with_combiner.history[-1].counters.shuffle_bytes
            < without.history[-1].counters.shuffle_bytes
        )

    def test_empty_input(self):
        engine = MapReduceEngine()
        assert engine.run(word_count_job(), []) == []

    def test_run_chain_feeds_outputs_forward(self):
        engine = MapReduceEngine(n_splits=2)

        def second_mapper(pair):
            word, count = pair
            yield ("total", count)

        def second_reducer(key, values):
            yield (key, sum(values))

        chain = [word_count_job(), MapReduceJob("sum", second_mapper, second_reducer)]
        output = dict(engine.run_chain(chain, ["a b", "a"]))
        assert output == {"total": 3}
        assert engine.jobs_run == 2
        assert engine.total_shuffle_bytes > 0

    def test_invalid_split_count(self):
        with pytest.raises(ValueError):
            MapReduceEngine(n_splits=0)

    def test_shuffle_sorts_keys(self):
        engine = MapReduceEngine(n_splits=1)

        def mapper(record):
            yield (record, 1)

        def reducer(key, values):
            yield (key, sum(values))

        output = engine.run(MapReduceJob("sort", mapper, reducer), [3, 1, 2, 1])
        assert [key for key, _ in output] == [1, 2, 3]


class TestHive:
    @pytest.fixture()
    def session(self) -> HiveSession:
        return HiveSession(MapReduceEngine(n_splits=2))

    @pytest.fixture()
    def genes(self) -> HiveTable:
        return HiveTable(
            "genes", ("gene_id", "function"),
            [(0, 5), (1, 15), (2, 25), (3, 8), (4, 40)],
        )

    @pytest.fixture()
    def micro(self) -> HiveTable:
        rows = [(g, p, float(g * 10 + p)) for g in range(5) for p in range(3)]
        return HiveTable("micro", ("gene_id", "patient_id", "value"), rows)

    def test_table_validation_and_accessors(self, genes):
        assert len(genes) == 5
        assert genes.index_of("function") == 1
        with pytest.raises(KeyError):
            genes.index_of("nope")
        with pytest.raises(ValueError):
            HiveTable("bad", ("a", "a"), [])
        array = genes.to_array(["function"])
        assert array.shape == (5, 1)
        with pytest.raises(ValueError):
            HiveTable.from_array("bad", ["a"], np.ones((2, 2)))

    def test_select_runs_as_job(self, session, genes):
        before = session.engine.jobs_run
        selected = session.select(genes, col("function") < 10)
        assert {row[0] for row in selected.rows} == {0, 3}
        assert session.engine.jobs_run == before + 1

    def test_select_legacy_callable_warns_and_matches(self, session, genes):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            legacy = session.select(genes, lambda row: row["function"] < 10)
        expression = session.select(genes, col("function") < 10)
        assert legacy.rows == expression.rows

    def test_project(self, session, genes):
        projected = session.project(genes, ["function"])
        assert projected.columns == ("function",)
        assert sorted(row[0] for row in projected.rows) == [5, 8, 15, 25, 40]

    def test_join_matches_expected_cardinality(self, session, genes, micro):
        selected = session.select(genes, col("function") < 10)
        projected = session.project(selected, ["gene_id"])
        joined = session.join(projected, micro, "gene_id", "gene_id")
        assert len(joined) == 2 * 3
        assert joined.columns == ("gene_id", "gene_id_right", "patient_id", "value")

    def test_group_by_aggregates(self, session, micro):
        for aggregate, expected in [
            ("count", 3.0),
            ("sum", 0.0 + 1.0 + 2.0),
            ("avg", 1.0),
            ("min", 0.0),
            ("max", 2.0),
        ]:
            result = session.group_by(micro, "gene_id", "value", aggregate)
            lookup = dict(result.rows)
            assert lookup[0] == pytest.approx(expected)
        with pytest.raises(ValueError):
            session.group_by(micro, "gene_id", "value", "median")

    def test_sample_is_deterministic(self, session, micro):
        first = session.sample(micro, 0.4, seed=1)
        second = session.sample(micro, 0.4, seed=1)
        assert first.rows == second.rows
        assert 1 <= len(first) <= len(micro)
        with pytest.raises(ValueError):
            session.sample(micro, 0.0)


class TestMahout:
    @pytest.fixture()
    def mahout(self) -> Mahout:
        return Mahout(MapReduceEngine(n_splits=2))

    def test_covariance_matches_numpy(self, mahout, rng):
        matrix = rng.random((10, 5))
        np.testing.assert_allclose(
            mahout.covariance(matrix), np.cov(matrix, rowvar=False), atol=1e-10
        )

    def test_covariance_needs_two_samples(self, mahout, rng):
        with pytest.raises(ValueError):
            mahout.covariance(rng.random((1, 4)))

    def test_linear_regression_recovers_coefficients(self, mahout, rng):
        features = rng.random((40, 3))
        beta_true = np.array([2.0, -1.0, 0.5])
        target = features @ beta_true + 1.0
        beta = mahout.linear_regression(features, target)
        assert beta[0] == pytest.approx(1.0, abs=1e-6)
        np.testing.assert_allclose(beta[1:], beta_true, atol=1e-6)

    def test_linear_regression_validation(self, mahout, rng):
        with pytest.raises(ValueError):
            mahout.linear_regression(rng.random((5, 2)), rng.random(6))

    def test_truncated_svd_close_to_lapack(self, mahout, rng):
        matrix = rng.random((12, 6))
        values = mahout.truncated_svd(matrix, k=2, n_iterations=100, seed=0)
        reference = np.linalg.svd(matrix, compute_uv=False)[:2]
        np.testing.assert_allclose(values, reference, rtol=1e-3)

    def test_wilcoxon_enrichment_p_values(self, mahout, rng):
        scores = rng.standard_normal(40)
        membership = (rng.random((40, 3)) < 0.3).astype(int)
        membership[:, 1] = 0
        membership[rng.choice(40, 10, replace=False), 1] = 1
        scores[membership[:, 1] == 1] += 5.0
        p_values = mahout.wilcoxon_enrichment(scores, membership)
        assert p_values.shape == (3,)
        assert p_values[1] < 0.01
        assert np.all((p_values >= 0) & (p_values <= 1))

    def test_wilcoxon_validation(self, mahout, rng):
        with pytest.raises(ValueError):
            mahout.wilcoxon_enrichment(rng.random(5), rng.integers(0, 2, (6, 2)))

    def test_biclustering_unsupported(self, mahout):
        with pytest.raises(NotImplementedError):
            mahout.biclustering(np.ones((4, 4)))

    def test_analytics_run_as_mapreduce_jobs(self, mahout, rng):
        before = mahout.engine.jobs_run
        mahout.covariance(rng.random((6, 3)))
        assert mahout.engine.jobs_run >= before + 2  # means + outer products
