"""Statistical acceptance of the approximate query tier.

Four layers, matching docs/APPROXIMATE.md:

- **Coverage**: over 200 fixed sampling seeds, the 95% confidence
  intervals for sampled sum/mean (sample-last, population known) and
  Horvitz-Thompson sum/count (filters above the sample) cover the exact
  answer at the nominal rate, within a binomial tolerance band — the
  test is deterministic, so it either always passes or always fails.
- **Merge invariance** (hypothesis): HyperLogLog and t-digest partition
  sketches merge to *exactly* the single-pass sketch, in any merge
  order, over every encoding and narrowed selections — the property the
  cluster bridge's driver-side reduction relies on.
- **Planner / cluster equivalence**: optimized and unoptimized lowerings
  agree bit for bit, synopsis routing materialises a reusable ``Sample``,
  and the cluster's merged partials equal one single-pass sketch.
- **Gates**: the verifier's ``invalid-confidence`` /
  ``non-mergeable-aggregate`` rejection classes carry node paths, and
  the bench regression gate demonstrably trips when the committed
  ``approx_aggregate`` speedup is doctored away.
"""

from __future__ import annotations

import json
import math
import pathlib
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, PartitionedTable
from repro.cluster.bridge import run_shared_plan as run_cluster_plan
from repro.colstore.catalog import ColumnStore
from repro.colstore.column import ColumnVector
from repro.colstore.sketches import (
    ApproxResult,
    HyperLogLog,
    TDigest,
    normal_quantile,
)
from repro.core.queries import dataset_tables
from repro.datagen.dataset import GenBaseDataset
from repro.colstore.planner import explain_plan, optimize_plan, run_plan
from repro.plan import (
    ApproxAggregate,
    Filter,
    Project,
    Sample,
    Scan,
    approx_distinct,
    approx_mean,
    approx_quantile,
    approx_sum,
    col,
    lit,
)
from repro.plan.verify import PlanVerificationError, verified_schema

REPO = pathlib.Path(__file__).resolve().parent.parent

#: Coverage sweep: 200 fixed seeds at 95% nominal coverage.  The binomial
#: count of covering intervals has mean 190 and sd ~3.08; a floor four
#: sigma below the mean (178) never flakes, yet still fails any estimator
#: whose true coverage drops under ~92% — an interval that is honestly
#: wrong, not an unlucky draw.
N_SEEDS = 200
MIN_HITS = 178
FRACTION = 0.1


class ApproxFixture:
    """One GenBase store plus the exact answers the intervals must cover."""

    def __init__(self, size: str):
        tables = dataset_tables(GenBaseDataset.generate(size, seed=7))
        self.store = ColumnStore()
        for name, columns in tables.items():
            self.store.create_table(name, columns)
        self.values = np.asarray(tables["microarray"]["expression_value"],
                                 dtype=np.float64)
        self.exact_sum = float(self.values.sum())
        self.exact_mean = float(self.values.mean())
        # Filter-above-sample ground truth (Horvitz-Thompson path).
        self.predicate = col("gene_id") < lit(25)
        mask = np.asarray(tables["microarray"]["gene_id"]) < 25
        self.ht_sum = float(self.values[mask].sum())
        self.ht_count = float(mask.sum())


@pytest.fixture(scope="module", params=("tiny", "small"))
def fx(request) -> ApproxFixture:
    return ApproxFixture(request.param)


class TestStatisticalCoverage:
    """95% intervals cover the exact answer ~95% of the time, never flaking."""

    def _hits(self, fx, make_plan, exact) -> int:
        hits = 0
        for seed in range(N_SEEDS):
            result = run_plan(make_plan(seed), fx.store)
            assert result.ci_low <= result.estimate <= result.ci_high
            hits += result.covers(exact)
        return hits

    def test_sampled_sum_population_known(self, fx):
        hits = self._hits(
            fx,
            lambda seed: approx_sum(Scan("microarray"), "expression_value",
                                    fraction=FRACTION, seed=seed),
            fx.exact_sum,
        )
        assert MIN_HITS <= hits <= N_SEEDS

    def test_sampled_mean_population_known(self, fx):
        hits = self._hits(
            fx,
            lambda seed: approx_mean(Scan("microarray"), "expression_value",
                                     fraction=FRACTION, seed=seed),
            fx.exact_mean,
        )
        assert MIN_HITS <= hits <= N_SEEDS

    def test_horvitz_thompson_sum_filter_above_sample(self, fx):
        hits = self._hits(
            fx,
            lambda seed: ApproxAggregate(
                Filter(Sample(Scan("microarray"), FRACTION, seed), fx.predicate),
                "expression_value", "approx_sum"),
            fx.ht_sum,
        )
        assert MIN_HITS <= hits <= N_SEEDS

    def test_horvitz_thompson_count_filter_above_sample(self, fx):
        hits = self._hits(
            fx,
            lambda seed: ApproxAggregate(
                Filter(Sample(Scan("microarray"), FRACTION, seed), fx.predicate),
                "expression_value", "approx_count"),
            fx.ht_count,
        )
        assert MIN_HITS <= hits <= N_SEEDS

    def test_sweep_reused_one_synopsis_per_seed(self, fx):
        # Every (fraction, seed) pair the sweeps above drew is cached: the
        # synopsis catalog holds one selection per key, not one per query.
        assert len(fx.store.synopses) == N_SEEDS


ENCODINGS = ("plain", "rle", "dictionary", "delta")


@st.composite
def partitioned_columns(draw):
    """A column (any encoding), a narrowed selection, and a partition of it.

    Returns ``(column, positions, parts, merge_order)`` where ``parts``
    partition ``positions`` and ``merge_order`` permutes the parts — the
    merged sketch must equal the single-pass sketch over ``positions``
    whatever the order.
    """
    n = draw(st.integers(min_value=1, max_value=120))
    values = draw(st.lists(st.integers(min_value=-50, max_value=50),
                           min_size=n, max_size=n))
    encoding = draw(st.sampled_from(ENCODINGS))
    column = ColumnVector("x", np.asarray(values, dtype=np.int64),
                          encoding=encoding)
    keep = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    positions = np.flatnonzero(keep)
    if len(positions) == 0:
        positions = np.array([0], dtype=np.int64)
    n_parts = draw(st.integers(min_value=1, max_value=4))
    cuts = sorted(draw(st.lists(
        st.integers(min_value=0, max_value=len(positions)),
        min_size=n_parts - 1, max_size=n_parts - 1)))
    parts = np.split(positions, cuts)
    order = draw(st.permutations(range(len(parts))))
    return column, positions, parts, order


class TestMergeInvariance:
    """Partition sketches merge to the single-pass sketch, in any order."""

    @settings(max_examples=40, derandomize=True, deadline=None)
    @given(case=partitioned_columns())
    def test_hll_merge_is_order_and_partition_invariant(self, case):
        column, positions, parts, order = case
        single_pass = column.hll_sketch(positions)
        merged = HyperLogLog()
        for index in order:
            merged = merged.merge(column.hll_sketch(parts[index]))
        np.testing.assert_array_equal(merged.registers, single_pass.registers)
        assert tuple(merged.result()) == tuple(single_pass.result())

    @settings(max_examples=40, derandomize=True, deadline=None)
    @given(case=partitioned_columns())
    def test_tdigest_merge_is_order_and_partition_invariant(self, case):
        column, positions, parts, order = case
        single_pass = column.tdigest_sketch(positions)
        merged = TDigest()
        for index in order:
            merged = merged.merge(column.tdigest_sketch(parts[index]))
        np.testing.assert_array_equal(merged.means, single_pass.means)
        np.testing.assert_array_equal(merged.weights, single_pass.weights)
        for q in (0.0, 0.25, 0.5, 0.9, 1.0):
            assert merged.quantile(q) == single_pass.quantile(q)

    @settings(max_examples=40, derandomize=True, deadline=None)
    @given(case=partitioned_columns())
    def test_uncompressed_digest_matches_inverted_cdf_exactly(self, case):
        column, positions, _parts, _order = case
        digest = column.tdigest_sketch(positions)
        rows = column.take(positions).astype(np.float64)
        for q in (0.1, 0.5, 0.9):
            assert digest.quantile(q) == float(
                np.quantile(rows, q, method="inverted_cdf"))


class TestPlannerEquivalence:
    """Optimized and unoptimized lowerings agree; routing is pure caching."""

    PLANS = [
        approx_sum(Scan("microarray"), "expression_value", fraction=0.2, seed=3),
        approx_mean(Scan("microarray"), "expression_value", fraction=0.05),
        approx_distinct(Scan("microarray"), "gene_id"),
        approx_quantile(Filter(Scan("patients"), col("age") >= 40), "age", q=0.9),
        ApproxAggregate(
            Filter(Sample(Scan("microarray"), 0.2, 5), col("gene_id") < lit(10)),
            "expression_value", "approx_sum"),
        ApproxAggregate(
            Sample(Project(Scan("microarray"), ("expression_value",)), 0.25, 2),
            "expression_value", "approx_mean"),
    ]

    def test_optimized_matches_unoptimized_bit_for_bit(self, fx):
        for plan in self.PLANS:
            fast = run_plan(plan, fx.store, optimized=True)
            slow = run_plan(plan, fx.store, optimized=False)
            assert tuple(fast) == tuple(slow), explain_plan(plan, fx.store)

    def test_synopsis_routing_materialises_the_sample(self, fx):
        plan = approx_sum(Scan("microarray"), "expression_value",
                          fraction=0.2, seed=3)
        rendered = explain_plan(optimize_plan(plan, fx.store), fx.store)
        assert "Sample" in rendered
        explicit = ApproxAggregate(
            Sample(Scan("microarray"), 0.2, 3), "expression_value", "approx_sum")
        assert tuple(run_plan(plan, fx.store)) == tuple(run_plan(explicit, fx.store))

    def test_repeated_queries_reuse_one_cached_synopsis(self):
        fx = ApproxFixture("tiny")
        plan = approx_mean(Scan("microarray"), "expression_value",
                           fraction=0.15, seed=11)
        first = run_plan(plan, fx.store)
        assert len(fx.store.synopses) == 1
        assert tuple(run_plan(plan, fx.store)) == tuple(first)
        # A projection wrapper (what projection pruning inserts between the
        # Sample and the Scan) still hits the same cached selection.
        wrapped = ApproxAggregate(
            Sample(Project(Scan("microarray"), ("expression_value",)), 0.15, 11),
            "expression_value", "approx_mean")
        assert tuple(run_plan(wrapped, fx.store)) == tuple(first)
        assert len(fx.store.synopses) == 1

    def test_no_sample_means_exact_and_zero_width(self, fx):
        result = run_plan(
            approx_sum(Scan("microarray"), "expression_value"), fx.store)
        assert result.estimate == result.ci_low == result.ci_high
        assert result.estimate == pytest.approx(fx.exact_sum, rel=1e-12)

    def test_sketch_kinds_stay_inside_their_error_models(self, fx):
        distinct = run_plan(approx_distinct(Scan("microarray"), "gene_id"),
                            fx.store)
        true_distinct = len(np.unique(
            fx.store.table("microarray").column("gene_id").values()))
        assert abs(distinct.estimate - true_distinct) <= 0.05 * true_distinct
        quantile = run_plan(
            approx_quantile(Scan("microarray"), "expression_value", q=0.5),
            fx.store)
        exact_median = float(np.quantile(fx.values, 0.5, method="inverted_cdf"))
        assert quantile.covers(exact_median)


class TestClusterSketchMerge:
    """Per-partition sketch partials reduce driver-side to the single pass."""

    def _partitioned(self, fx, n_parts: int) -> PartitionedTable:
        gene = fx.store.table("microarray").column("gene_id").values()
        value = fx.values
        bounds = np.linspace(0, len(gene), n_parts + 1).astype(np.int64)
        return PartitionedTable.from_partitions("microarray", [
            {"gene_id": gene[a:b], "expression_value": value[a:b]}
            for a, b in zip(bounds[:-1], bounds[1:])
        ])

    def test_distinct_merge_equals_single_pass(self, fx):
        plan = approx_distinct(Scan("microarray"), "gene_id")
        table = self._partitioned(fx, 4)
        merged = run_cluster_plan(plan, table, Cluster(4))
        single = HyperLogLog().add_array(
            fx.store.table("microarray").column("gene_id").values())
        assert tuple(merged) == tuple(single.result(plan.confidence))

    def test_filtered_quantile_merge_equals_single_pass(self, fx):
        plan = approx_quantile(
            Filter(Scan("microarray"), col("gene_id") < lit(25)),
            "expression_value", q=0.9)
        table = self._partitioned(fx, 3)
        merged = run_cluster_plan(plan, table, Cluster(3))
        gene = fx.store.table("microarray").column("gene_id").values()
        single = TDigest().add_array(fx.values[gene < 25])
        assert tuple(merged) == tuple(single.result(0.9, plan.confidence))

    def test_sampled_kinds_are_rejected_with_guidance(self, fx):
        plan = approx_sum(Scan("microarray"), "expression_value", fraction=0.1)
        with pytest.raises(ValueError, match="column-store planner"):
            run_cluster_plan(plan, self._partitioned(fx, 2), Cluster(2))


class TestVerifierRejections:
    """The new rejection classes carry their rule names and node paths."""

    SCHEMAS = {"microarray": {"patient_id": np.dtype(np.int64),
                              "gene_id": np.dtype(np.int64),
                              "expression_value": np.dtype(np.float64)}}

    def _rejects(self, plan) -> PlanVerificationError:
        with pytest.raises(PlanVerificationError) as excinfo:
            verified_schema(plan, self.SCHEMAS)
        return excinfo.value

    def test_invalid_confidence_names_node_path(self):
        error = self._rejects(ApproxAggregate(
            Filter(Scan("microarray"), col("gene_id") < lit(5)),
            "expression_value", "approx_mean", confidence=1.5))
        assert error.rule == "invalid-confidence"
        assert error.path.startswith("ApproxAggregate")

    def test_out_of_range_quantile_is_invalid_confidence(self):
        error = self._rejects(approx_quantile(
            Scan("microarray"), "expression_value", q=1.5))
        assert error.rule == "invalid-confidence"

    def test_non_mergeable_kind_names_the_contract(self):
        error = self._rejects(ApproxAggregate(
            Scan("microarray"), "expression_value", "approx_mode"))
        assert error.rule == "non-mergeable-aggregate"
        assert "mergeable" in str(error)
        assert error.path.startswith("ApproxAggregate")

    def test_well_formed_plan_verifies_to_interval_schema(self):
        schema = verified_schema(
            approx_distinct(Scan("microarray"), "gene_id"), self.SCHEMAS)
        assert list(schema) == ["approx_distinct(gene_id)", "ci_low",
                                "ci_high", "confidence"]


class TestBenchGateTrips:
    """The committed approx_aggregate entry is gated and its gate is live."""

    GATE = REPO / "benchmarks" / "check_bench_regression.py"
    RECORD = REPO / "BENCH_colstore.json"

    def _run_gate(self, candidate: pathlib.Path) -> subprocess.CompletedProcess:
        return subprocess.run(
            [sys.executable, str(self.GATE), "--candidate", str(candidate)],
            capture_output=True, text=True,
        )

    def _approx_entry(self, record: dict) -> dict:
        (entry,) = [e for e in record["results"] if e["op"] == "approx_aggregate"]
        return entry

    def test_committed_record_gates_a_real_speedup(self):
        entry = self._approx_entry(json.loads(self.RECORD.read_text()))
        assert entry["gated"] is True
        assert entry["speedup"] > 1.0

    def test_identical_candidate_passes(self, tmp_path):
        candidate = tmp_path / "candidate.json"
        candidate.write_text(self.RECORD.read_text())
        result = self._run_gate(candidate)
        assert result.returncode == 0, result.stdout + result.stderr

    def test_simulated_sampling_loss_trips_the_gate(self, tmp_path):
        record = json.loads(self.RECORD.read_text())
        entry = self._approx_entry(record)
        # Simulate losing the sampling fast path: the "approximate" run
        # costs twice the exact scan.
        entry["compressed_s"] = entry["baseline_s"] * 2
        entry["speedup"] = 0.5
        candidate = tmp_path / "doctored.json"
        candidate.write_text(json.dumps(record))
        result = self._run_gate(candidate)
        assert result.returncode == 1
        assert "REGRESSION" in result.stdout
        assert "approx_aggregate" in result.stdout


class TestApproxResultContract:
    """The (estimate, ci_low, ci_high, confidence) tuple behaves as one."""

    def test_unpacks_in_documented_order(self):
        estimate, low, high, confidence = ApproxResult(3.0, 2.0, 4.0, 0.9)
        assert (estimate, low, high, confidence) == (3.0, 2.0, 4.0, 0.9)

    def test_covers_is_inclusive_and_half_width_symmetric(self):
        result = ApproxResult(3.0, 2.0, 4.0, 0.9)
        assert result.covers(2.0) and result.covers(4.0)
        assert not result.covers(4.0000001)
        assert result.half_width == 1.0

    def test_normal_quantile_brackets_the_textbook_z(self):
        assert normal_quantile(0.975) == pytest.approx(1.959964, abs=1e-5)
        with pytest.raises(ValueError):
            normal_quantile(1.0)


class TestSynopsisCatalog:
    """Synopses build once, cache by key, and keep rare strata alive."""

    def test_uniform_synopsis_is_cached_and_bit_identical_to_sample(self):
        fx = ApproxFixture("tiny")
        first = fx.store.synopses.uniform("microarray", 0.1, seed=4)
        again = fx.store.synopses.uniform("microarray", 0.1, seed=4)
        assert first is again
        assert len(fx.store.synopses) == 1
        inline = fx.store.query("microarray").sample(0.1, 4)
        np.testing.assert_array_equal(first, inline.selection)

    def test_stratified_synopsis_keeps_every_stratum(self):
        fx = ApproxFixture("tiny")
        selection = fx.store.synopses.stratified("microarray", "gene_id", 0.05,
                                                 seed=9)
        table = fx.store.table("microarray")
        sampled_genes = table.column("gene_id").take(selection)
        all_genes = np.unique(table.column("gene_id").values())
        np.testing.assert_array_equal(np.unique(sampled_genes), all_genes)
        # Each stratum keeps max(1, round(fraction * group)) rows, so the
        # total sits at (or just above) the requested rate.
        assert len(selection) >= math.floor(0.05 * table.row_count)

    def test_stratified_rejects_out_of_range_fraction(self):
        fx = ApproxFixture("tiny")
        with pytest.raises(ValueError):
            fx.store.synopses.stratified("microarray", "gene_id", 0.0)

    def test_describe_reports_keys_and_row_counts(self):
        fx = ApproxFixture("tiny")
        fx.store.synopses.uniform("patients", 0.5, seed=1)
        description = fx.store.synopses.describe()
        # The trailing key component is the table's store version (0 while
        # never written) — the write-staleness guard.
        assert list(description) == [("uniform", "patients", 0.5, 1, 0)]
        assert description[("uniform", "patients", 0.5, 1, 0)] == 30
