"""Tests for the synthetic data generators."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.datagen import (
    GenBaseDataset,
    SIZE_PRESETS,
    SizeSpec,
    generate_genes,
    generate_microarray,
    generate_ontology,
    generate_patients,
    read_matrix_csv,
    read_table_csv,
    write_dataset_csv,
    write_matrix_csv,
    write_table_csv,
)
from repro.datagen.sizes import PAPER_REPORTED_SIZES, resolve_size
from repro.datagen.writer import matrix_from_csv_string, matrix_to_csv_string


class TestSizeSpec:
    def test_presets_include_paper_sizes(self):
        assert SIZE_PRESETS["paper-small"].n_genes == 5_000
        assert SIZE_PRESETS["paper-small"].n_patients == 5_000
        assert SIZE_PRESETS["paper-medium"].n_genes == 15_000
        assert SIZE_PRESETS["paper-large"].n_patients == 40_000
        assert SIZE_PRESETS["paper-xlarge"].n_genes == 60_000

    def test_reported_sizes_grow_monotonically(self):
        cells = [SIZE_PRESETS[name].n_cells for name in PAPER_REPORTED_SIZES]
        assert cells == sorted(cells)
        assert cells[0] < cells[-1]

    def test_resolve_by_name_and_passthrough(self):
        spec = resolve_size("tiny")
        assert isinstance(spec, SizeSpec)
        assert resolve_size(spec) is spec

    def test_resolve_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown size preset"):
            resolve_size("gigantic")

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            SizeSpec(name="bad", n_genes=0, n_patients=10)
        with pytest.raises(ValueError):
            SizeSpec(name="bad", n_genes=10, n_patients=10, latent_rank=0)
        with pytest.raises(ValueError):
            SizeSpec(name="bad", n_genes=10, n_patients=10, n_causal_genes=11)

    def test_scaled_preserves_positive_dimensions(self):
        spec = SIZE_PRESETS["small"].scaled(0.5)
        assert spec.n_genes == 50
        assert spec.n_patients == 50
        with pytest.raises(ValueError):
            SIZE_PRESETS["small"].scaled(0)

    def test_cells_and_bytes(self):
        spec = SIZE_PRESETS["tiny"]
        assert spec.n_cells == spec.n_genes * spec.n_patients
        assert spec.microarray_bytes == spec.n_cells * 8


class TestMicroarray:
    def test_shape_and_positivity(self):
        data = generate_microarray("tiny", seed=3)
        spec = SIZE_PRESETS["tiny"]
        assert data.matrix.shape == (spec.n_patients, spec.n_genes)
        assert np.all(data.matrix >= 0)
        assert np.all(np.isfinite(data.matrix))

    def test_deterministic_for_seed(self):
        a = generate_microarray("tiny", seed=5).matrix
        b = generate_microarray("tiny", seed=5).matrix
        c = generate_microarray("tiny", seed=6).matrix
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_planted_rank_visible_in_spectrum(self):
        data = generate_microarray("small", seed=0)
        singular_values = np.linalg.svd(
            data.matrix - data.matrix.mean(axis=0), compute_uv=False
        )
        rank = data.structure.latent_rank
        # The spectrum should fall off after the planted rank.
        assert singular_values[0] > 2 * singular_values[rank + 3]

    def test_relational_form_roundtrip(self):
        data = generate_microarray("tiny", seed=1)
        relational = data.to_relational()
        assert relational.shape == (data.matrix.size, 3)
        gene = int(relational[17, 0])
        patient = int(relational[17, 1])
        assert relational[17, 2] == pytest.approx(data.matrix[patient, gene])

    def test_rows_iterator_matches_matrix(self):
        data = generate_microarray("tiny", seed=1)
        first = next(iter(data.rows()))
        assert first[0] == 0 and first[1] == 0
        assert first[2] == pytest.approx(float(data.matrix[0, 0]))

    def test_biclusters_are_planted(self):
        data = generate_microarray("tiny", seed=2)
        assert len(data.structure.bicluster_rows) >= 1
        rows = data.structure.bicluster_rows[0]
        cols = data.structure.bicluster_cols[0]
        block = data.matrix[np.ix_(rows, cols)]
        # Planted biclusters are under-expressed relative to the matrix mean.
        assert block.mean() < data.matrix.mean()


class TestPatients:
    def test_columns_and_ranges(self):
        micro = generate_microarray("tiny", seed=0)
        patients = generate_patients("tiny", micro, seed=0)
        assert patients.n_patients == micro.n_patients
        assert patients.age.min() >= 18 and patients.age.max() < 95
        assert set(np.unique(patients.gender)) <= {0, 1}
        assert patients.disease_id.min() >= 1
        assert patients.disease_id.max() <= SIZE_PRESETS["tiny"].n_diseases

    def test_drug_response_correlates_with_causal_genes(self):
        micro = generate_microarray("small", seed=0)
        patients = generate_patients("small", micro, seed=0)
        causal = micro.structure.causal_genes
        signal = micro.matrix[:, causal] @ micro.structure.causal_weights
        correlation = np.corrcoef(signal, patients.drug_response)[0, 1]
        assert correlation > 0.9

    def test_spec_mismatch_raises(self):
        micro = generate_microarray("tiny", seed=0)
        with pytest.raises(ValueError, match="patients"):
            generate_patients("small", micro, seed=0)

    def test_relational_and_column_access(self):
        micro = generate_microarray("tiny", seed=0)
        patients = generate_patients("tiny", micro, seed=0)
        table = patients.to_relational()
        assert table.shape == (patients.n_patients, 6)
        np.testing.assert_array_equal(
            patients.column("age"), patients.age
        )
        with pytest.raises(KeyError):
            patients.column("nope")


class TestGenes:
    def test_fields_and_no_self_targets(self):
        genes = generate_genes("small", seed=0)
        assert genes.n_genes == SIZE_PRESETS["small"].n_genes
        assert not np.any(genes.target == genes.gene_id)
        assert np.all(genes.length >= 50)
        assert np.all(np.diff(genes.position) > 0)
        assert genes.function.max() < SIZE_PRESETS["small"].n_functions

    def test_relational_shape(self):
        genes = generate_genes("tiny", seed=0)
        assert genes.to_relational().shape == (genes.n_genes, 5)

    def test_column_lookup(self):
        genes = generate_genes("tiny", seed=0)
        np.testing.assert_array_equal(genes.column("function"), genes.function)
        with pytest.raises(KeyError):
            genes.column("unknown")


class TestOntology:
    def test_membership_shape_and_minimum_members(self):
        micro = generate_microarray("tiny", seed=0)
        ontology = generate_ontology("tiny", micro, seed=0)
        spec = SIZE_PRESETS["tiny"]
        assert ontology.membership.shape == (spec.n_genes, spec.n_go_terms)
        assert np.all(ontology.membership.sum(axis=0) >= 2)

    def test_enriched_terms_use_differential_genes(self):
        micro = generate_microarray("small", seed=0)
        ontology = generate_ontology("small", micro, seed=0)
        assert len(ontology.enriched_terms) >= 1
        differential = set(micro.structure.differential_genes.tolist())
        for term in ontology.enriched_terms:
            members = set(ontology.members(int(term)).tolist())
            overlap = len(members & differential) / len(members)
            assert overlap > 0.5

    def test_relational_forms(self):
        micro = generate_microarray("tiny", seed=0)
        ontology = generate_ontology("tiny", micro, seed=0)
        dense = ontology.to_relational(include_zeros=True)
        sparse = ontology.to_relational(include_zeros=False)
        assert dense.shape[0] == ontology.n_genes * ontology.n_go_terms
        assert sparse.shape[0] == int(ontology.membership.sum())
        assert np.all(sparse[:, 2] == 1)


class TestDataset:
    def test_generate_and_validate(self, tiny_dataset):
        tiny_dataset.validate()
        description = tiny_dataset.describe()
        assert description["n_genes"] == tiny_dataset.spec.n_genes
        assert description["size"] == "tiny"

    def test_consistency_across_tables(self, tiny_dataset):
        assert tiny_dataset.microarray.n_patients == tiny_dataset.patients.n_patients
        assert tiny_dataset.microarray.n_genes == tiny_dataset.genes.n_genes
        assert tiny_dataset.ontology.n_genes == tiny_dataset.genes.n_genes

    def test_relational_accessors(self, tiny_dataset):
        assert tiny_dataset.microarray_relational().shape[1] == 3
        assert tiny_dataset.patients_relational().shape[1] == 6
        assert tiny_dataset.genes_relational().shape[1] == 5
        assert tiny_dataset.ontology_relational().shape[1] == 3

    def test_validate_detects_corruption(self):
        dataset = GenBaseDataset.generate("tiny", seed=0)
        dataset.microarray.matrix[0, 0] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            dataset.validate()


class TestWriters:
    def test_matrix_csv_roundtrip_exact(self, rng):
        matrix = rng.random((7, 4))
        buffer = io.StringIO()
        write_matrix_csv(matrix, buffer)
        buffer.seek(0)
        restored = read_matrix_csv(buffer)
        np.testing.assert_array_equal(matrix, restored)

    def test_matrix_csv_string_roundtrip(self, rng):
        matrix = rng.standard_normal((3, 5))
        restored = matrix_from_csv_string(matrix_to_csv_string(matrix))
        np.testing.assert_array_equal(matrix, restored)

    def test_matrix_csv_rejects_1d(self):
        with pytest.raises(ValueError):
            write_matrix_csv(np.arange(5), io.StringIO())

    def test_table_csv_roundtrip(self):
        rows = [(1, 2.5, "a"), (2, 3.5, "b")]
        buffer = io.StringIO()
        write_table_csv(rows, ("x", "y", "label"), buffer)
        buffer.seek(0)
        columns, restored = read_table_csv(buffer)
        assert columns == ["x", "y", "label"]
        assert restored[0][0] == 1.0
        assert restored[1][2] == "b"

    def test_empty_table_csv(self):
        columns, rows = read_table_csv(io.StringIO(""))
        assert columns == [] and rows == []

    def test_write_dataset_csv(self, tiny_dataset, tmp_path):
        paths = write_dataset_csv(tiny_dataset, tmp_path / "data")
        assert set(paths) == {"microarray", "patients", "genes", "ontology"}
        for path in paths.values():
            assert path.exists()
            assert path.stat().st_size > 0
        columns, rows = read_table_csv(paths["patients"])
        assert columns[0] == "patient_id"
        assert len(rows) == tiny_dataset.n_patients
