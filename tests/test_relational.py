"""Tests for the row-store relational engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.relational import (
    ColumnType,
    Database,
    HeapTable,
    col,
    lit,
    and_,
    or_,
    not_,
    default_madlib_registry,
)
from repro.relational.operators import (
    Compute,
    Filter,
    HashAggregate,
    HashJoin,
    Limit,
    NestedLoopJoin,
    Project,
    RowSource,
    SeqScan,
    Sort,
)
from repro.relational.planner import FilterNode, JoinNode, ScanNode, optimize
from repro.relational.schema import Column, Schema
from repro.relational.storage import HeapFile, Page
from repro.relational.table import table_from_arrays
from repro.relational.udf import UdfRegistry


@pytest.fixture()
def people_table() -> HeapTable:
    schema = Schema.from_pairs(
        [("id", ColumnType.INT), ("name", ColumnType.STRING), ("score", ColumnType.FLOAT)]
    )
    table = HeapTable("people", schema)
    table.insert_many(
        [(1, "ann", 3.5), (2, "bob", 1.0), (3, "cat", 2.5), (4, "dan", 4.0)]
    )
    return table


@pytest.fixture()
def genbase_db(tiny_dataset) -> Database:
    db = Database()
    db.create_table(
        "microarray",
        [("gene_id", ColumnType.INT), ("patient_id", ColumnType.INT),
         ("expression_value", ColumnType.FLOAT)],
    )
    db.load_array("microarray", tiny_dataset.microarray_relational())
    db.create_table(
        "genes",
        [("gene_id", ColumnType.INT), ("target", ColumnType.INT),
         ("position", ColumnType.INT), ("length", ColumnType.INT),
         ("function", ColumnType.INT)],
    )
    db.load_array("genes", tiny_dataset.genes_relational())
    return db


class TestSchema:
    def test_coerce_row(self):
        schema = Schema.from_pairs([("a", ColumnType.INT), ("b", ColumnType.FLOAT)])
        assert schema.coerce_row(("3", "4.5")) == (3, 4.5)

    def test_coerce_errors(self):
        schema = Schema.from_pairs([("a", ColumnType.INT)])
        with pytest.raises(ValueError):
            schema.coerce_row((1, 2))
        with pytest.raises(TypeError):
            schema.coerce_row(("not-a-number",))

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Schema([Column("x", ColumnType.INT), Column("x", ColumnType.INT)])

    def test_index_and_projection(self):
        schema = Schema.from_pairs(
            [("a", ColumnType.INT), ("b", ColumnType.FLOAT), ("c", ColumnType.STRING)]
        )
        assert schema.index_of("b") == 1
        assert schema.project(["c", "a"]).names == ("c", "a")
        with pytest.raises(KeyError):
            schema.index_of("z")

    def test_concat_renames_collisions(self):
        left = Schema.from_pairs([("id", ColumnType.INT), ("x", ColumnType.FLOAT)])
        right = Schema.from_pairs([("id", ColumnType.INT), ("y", ColumnType.FLOAT)])
        combined = left.concat(right)
        assert combined.names == ("id", "x", "id_right", "y")

    def test_rename_and_prefix(self):
        schema = Schema.from_pairs([("a", ColumnType.INT)])
        assert schema.rename({"a": "b"}).names == ("b",)
        assert schema.prefixed("t").names == ("t.a",)


class TestStorage:
    def test_page_roundtrip_with_strings_and_nulls(self):
        schema = Schema.from_pairs(
            [("id", ColumnType.INT), ("name", ColumnType.STRING), ("flag", ColumnType.BOOL)]
        )
        page = Page(schema)
        assert page.try_insert((1, "hello", True))
        assert page.try_insert((2, None, False))
        rows = list(page.rows())
        assert rows == [(1, "hello", True), (2, None, False)]

    def test_page_serialisation_roundtrip(self):
        schema = Schema.from_pairs([("x", ColumnType.FLOAT)])
        page = Page(schema)
        page.try_insert((1.5,))
        page.try_insert((2.5,))
        restored = Page.from_bytes(page.to_bytes(), schema)
        assert list(restored.rows()) == [(1.5,), (2.5,)]

    def test_page_overflow_starts_new_page(self):
        schema = Schema.from_pairs([("x", ColumnType.INT)])
        heap = HeapFile(schema, page_size=64)
        for i in range(50):
            heap.insert((i,))
        assert heap.page_count > 1
        assert list(heap.scan()) == [(i,) for i in range(50)]

    def test_heap_row_count_and_clear(self):
        schema = Schema.from_pairs([("x", ColumnType.INT)])
        heap = HeapFile(schema)
        heap.insert((1,))
        heap.insert((2,))
        assert heap.row_count == 2
        assert heap.size_bytes > 0
        heap.clear()
        assert heap.row_count == 0
        assert list(heap.scan()) == []


class TestHeapTable:
    def test_insert_scan_and_columns(self, people_table):
        assert len(people_table) == 4
        assert people_table.column_values("name") == ["ann", "bob", "cat", "dan"]
        assert people_table.page_count >= 1

    def test_load_array_type_narrowing(self):
        table = table_from_arrays(
            "t", [("id", ColumnType.INT, np.array([1.0, 2.0])),
                  ("v", ColumnType.FLOAT, np.array([0.5, 1.5]))]
        )
        assert table.to_rows() == [(1, 0.5), (2, 1.5)]

    def test_load_array_shape_check(self, people_table):
        with pytest.raises(ValueError):
            people_table.load_array(np.ones((3, 2)))

    def test_truncate(self, people_table):
        people_table.truncate()
        assert len(people_table) == 0


class TestExpressions:
    def test_comparison_and_boolean(self, people_table):
        predicate = and_(col("score") > lit(2.0), not_(col("name") == lit("dan")))
        bound = predicate.bind(people_table.schema)
        rows = [row for row in people_table.scan() if bound(row)]
        assert [row[0] for row in rows] == [1, 3]

    def test_or_and_operators(self, people_table):
        predicate = (col("score") < lit(1.5)) | (col("score") >= lit(4.0))
        bound = predicate.bind(people_table.schema)
        assert [row[0] for row in people_table.scan() if bound(row)] == [2, 4]

    def test_arithmetic(self, people_table):
        expression = col("score") * lit(2.0) + lit(1.0)
        bound = expression.bind(people_table.schema)
        first = next(iter(people_table.scan()))
        assert bound(first) == pytest.approx(8.0)

    def test_isin(self, people_table):
        bound = col("id").isin([2, 4]).bind(people_table.schema)
        assert sum(bound(row) for row in people_table.scan()) == 2

    def test_columns_referenced(self):
        predicate = and_(col("a") < lit(1), or_(col("b") > lit(2), col("c") == lit(3)))
        assert predicate.columns_referenced() == {"a", "b", "c"}

    def test_unknown_column_binding_fails(self, people_table):
        with pytest.raises(KeyError):
            col("missing").bind(people_table.schema)

    def test_invert_operator(self, people_table):
        bound = (~(col("id") == lit(1))).bind(people_table.schema)
        assert sum(bound(row) for row in people_table.scan()) == 3


class TestOperators:
    def test_filter_project_limit(self, people_table):
        plan = Limit(
            Project(Filter(SeqScan(people_table), col("score") > lit(1.5)), ["name"]),
            2,
        )
        assert plan.rows() == [("ann",), ("cat",)]

    def test_compute_appends_column(self, people_table):
        plan = Compute(SeqScan(people_table), "double_score", col("score") * lit(2))
        rows = plan.rows()
        assert rows[0][-1] == pytest.approx(7.0)
        assert plan.output_schema.names[-1] == "double_score"

    def test_hash_join(self, people_table):
        scores_schema = Schema.from_pairs([("person_id", ColumnType.INT), ("bonus", ColumnType.FLOAT)])
        bonuses = RowSource([(1, 10.0), (3, 30.0), (3, 31.0)], scores_schema)
        join = HashJoin(bonuses, SeqScan(people_table), "person_id", "id")
        rows = join.rows()
        assert len(rows) == 3
        assert {row[0] for row in rows} == {1, 3}

    def test_nested_loop_join(self, people_table):
        other = RowSource([(2.0,)], Schema.from_pairs([("threshold", ColumnType.FLOAT)]))
        join = NestedLoopJoin(SeqScan(people_table), other, col("score") > col("threshold"))
        assert {row[0] for row in join.rows()} == {1, 3, 4}

    def test_sort_ascending_descending(self, people_table):
        ascending = Sort(SeqScan(people_table), ["score"]).rows()
        descending = Sort(SeqScan(people_table), ["score"], descending=True).rows()
        assert [row[0] for row in ascending] == [2, 3, 1, 4]
        assert [row[0] for row in descending] == [4, 1, 3, 2]

    def test_hash_aggregate(self, people_table):
        plan = HashAggregate(
            SeqScan(people_table),
            group_by=[],
            aggregates=[("count", "id", "n"), ("avg", "score", "avg_score"),
                        ("min", "score", "lo"), ("max", "score", "hi"),
                        ("sum", "score", "total")],
        )
        (row,) = plan.rows()
        assert row == (4, pytest.approx(2.75), 1.0, 4.0, pytest.approx(11.0))

    def test_aggregate_with_groups(self, people_table):
        plan = HashAggregate(
            Compute(SeqScan(people_table), "bucket", col("id") * lit(0) + lit(1)),
            group_by=["bucket"],
            aggregates=[("count", "id", "n")],
        )
        (row,) = plan.rows()
        assert row[1] == 4

    def test_aggregate_unknown_function(self, people_table):
        with pytest.raises(ValueError):
            HashAggregate(SeqScan(people_table), [], [("median", "score", "m")])

    def test_limit_validation(self, people_table):
        with pytest.raises(ValueError):
            Limit(SeqScan(people_table), -1)


class TestPlannerAndQuery:
    def test_predicate_pushdown_below_join(self, genbase_db):
        query = (
            genbase_db.query("genes")
            .join(genbase_db.query("microarray"), on=("gene_id", "gene_id"))
            .where(col("function") < lit(10))
        )
        optimized = optimize(query.logical_plan())
        assert isinstance(optimized, JoinNode)
        assert isinstance(optimized.left, FilterNode)
        assert isinstance(optimized.left.child, ScanNode)

    def test_pushdown_preserves_results(self, genbase_db):
        pushed = (
            genbase_db.query("genes")
            .join(genbase_db.query("microarray"), on=("gene_id", "gene_id"))
            .where(col("function") < lit(10))
            .rows()
        )
        manual = (
            genbase_db.query("genes")
            .where(col("function") < lit(10))
            .join(genbase_db.query("microarray"), on=("gene_id", "gene_id"))
            .rows()
        )
        assert sorted(pushed) == sorted(manual)

    def test_join_build_side_swap_keeps_column_order(self, genbase_db):
        # genes (small) joined as the right input of microarray (large):
        # the planner builds on genes but output columns must stay in order.
        query = genbase_db.query("microarray").join(
            genbase_db.query("genes"), on=("gene_id", "gene_id")
        )
        result = query.run()
        assert result.schema.names[:3] == ("gene_id", "patient_id", "expression_value")
        assert len(result) == len(genbase_db.table("microarray").to_rows())

    def test_explain_mentions_operators(self, genbase_db):
        text = (
            genbase_db.query("genes")
            .where(col("function") < lit(10))
            .select("gene_id")
            .explain()
        )
        assert "SeqScan" in text and "Filter" in text and "Project" in text

    def test_query_count_and_order_by(self, genbase_db):
        query = genbase_db.query("genes").where(col("function") < lit(10))
        assert query.count() == len(query.rows())
        ordered = genbase_db.query("genes").order_by("length", descending=True).rows()
        lengths = [row[3] for row in ordered]
        assert lengths == sorted(lengths, reverse=True)

    def test_group_by_via_query(self, genbase_db):
        rows = (
            genbase_db.query("microarray")
            .group_by(["gene_id"], [("avg", "expression_value", "avg_value")])
            .rows()
        )
        assert len(rows) == genbase_db.table("genes").row_count

    def test_pivot_matches_source_matrix(self, genbase_db, tiny_dataset):
        result = genbase_db.query("microarray").run()
        matrix, row_labels, col_labels = result.pivot(
            "patient_id", "gene_id", "expression_value"
        )
        np.testing.assert_allclose(matrix, tiny_dataset.expression_matrix, atol=1e-12)

    def test_result_set_to_array_and_column(self, genbase_db):
        result = genbase_db.query("genes").select("gene_id", "function").limit(5).run()
        array = result.to_array()
        assert array.shape == (5, 2)
        assert result.column("gene_id") == [int(v) for v in array[:, 0]]


class TestDatabase:
    def test_create_duplicate_and_drop(self):
        db = Database()
        db.create_table("t", [("x", ColumnType.INT)])
        with pytest.raises(ValueError):
            db.create_table("t", [("x", ColumnType.INT)])
        assert "t" in db
        db.drop_table("t")
        assert "t" not in db
        with pytest.raises(KeyError):
            db.drop_table("t")

    def test_describe_and_totals(self, genbase_db, tiny_dataset):
        description = genbase_db.describe()
        assert description["microarray"]["rows"] == tiny_dataset.spec.n_cells
        assert genbase_db.total_rows() > 0
        assert genbase_db.total_bytes() > 0

    def test_unknown_table(self):
        with pytest.raises(KeyError, match="known tables"):
            Database().query("missing")


class TestUdfRegistry:
    def test_register_and_call(self):
        registry = UdfRegistry()
        registry.register("double", lambda x: 2 * x, tier="compiled")
        assert registry.call("double", 4) == 8
        assert "double" in registry

    def test_duplicate_and_unknown(self):
        registry = UdfRegistry()
        registry.register("f", lambda: None)
        with pytest.raises(ValueError):
            registry.register("f", lambda: None)
        with pytest.raises(KeyError):
            registry.get("g")
        with pytest.raises(ValueError):
            registry.register("h", lambda: None, tier="gpu")

    def test_madlib_registry_contents(self, rng):
        registry = default_madlib_registry()
        assert set(registry.names()) >= {"linear_regression", "covariance", "svd",
                                          "biclustering", "enrichment"}
        matrix = rng.random((20, 4))
        cov = registry.call("covariance", matrix)
        np.testing.assert_allclose(cov, np.cov(matrix, rowvar=False), atol=1e-10)
        with pytest.raises(NotImplementedError):
            registry.call("biclustering", matrix)

    def test_madlib_svd_is_interpreted_but_correct(self, rng):
        registry = default_madlib_registry()
        matrix = rng.random((12, 5))
        values = registry.call("svd", matrix, 2)
        reference = np.linalg.svd(matrix, compute_uv=False)[:2]
        np.testing.assert_allclose(values, reference, rtol=1e-2)
        assert registry.get("svd").tier == "interpreted"
