"""Repo invariant linter: every rule fires on its fixture, the tree is clean,
and the CLI trips on an injected violation (the CI job's contract)."""

from __future__ import annotations

import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
LINTER = REPO / "tools" / "lint_invariants.py"
FIXTURES = REPO / "tests" / "data" / "lint_fixtures"

sys.path.insert(0, str(REPO / "tools"))
from lint_invariants import (  # noqa: E402
    ALL_RULES,
    lint_file,
    lint_paths,
    rule_counts,
    run_self_test,
)


def _run_cli(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run([sys.executable, str(LINTER), *args],
                          capture_output=True, text=True, cwd=REPO)


class TestRulesFireOnFixtures:
    @pytest.mark.parametrize("rule,fixture", [
        ("raw-lambda-predicate", "raw_lambda_predicate.py"),
        ("decode-in-fast-path", "colstore/compression.py"),
        ("unseeded-rng", "unseeded_rng.py"),
        ("unseeded-rng", "unseeded_synopsis.py"),
        ("fragment-state-mutation", "fragment_state_mutation.py"),
        ("bare-except", "bare_except.py"),
        ("plan-dataclass-eq", "plan_dataclass_eq.py"),
    ])
    def test_rule_fires_exactly_where_expected(self, rule, fixture):
        violations = lint_file(FIXTURES / fixture)
        fired = [v.rule for v in violations]
        assert rule in fired
        # Fixtures are single-rule: nothing else may fire on them.
        assert set(fired) == {rule}

    def test_clean_fixture_is_clean(self):
        assert lint_file(FIXTURES / "clean.py") == []

    def test_self_test_passes(self):
        assert run_self_test() == 0

    def test_every_rule_has_a_fixture(self):
        fired: set[str] = set()
        for fixture in FIXTURES.rglob("*.py"):
            fired.update(v.rule for v in lint_file(fixture))
        assert fired == set(ALL_RULES)


class TestTreeIsClean:
    def test_src_benchmarks_tools_pass(self):
        violations, n_files = lint_paths(
            [REPO / "src", REPO / "benchmarks", REPO / "tools"]
        )
        assert n_files > 80
        assert violations == [], "\n".join(v.render() for v in violations)

    def test_cli_exit_zero_on_clean_tree(self):
        result = _run_cli("src", "tools")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "clean" in result.stdout


class TestInjectedViolationTrips:
    """The CI job's trip-wire: the linter must fail a poisoned tree."""

    INJECTED = textwrap.dedent("""
        import numpy as np

        def poisoned(query):
            rng = np.random.default_rng()
            return query.where(lambda row: rng.random() > 0.5)
    """)

    def test_cli_exits_nonzero_and_names_the_rules(self, tmp_path):
        bad = tmp_path / "injected.py"
        bad.write_text(self.INJECTED)
        result = _run_cli(str(bad))
        assert result.returncode == 1
        assert "raw-lambda-predicate" in result.stdout
        assert "unseeded-rng" in result.stdout

    def test_summary_table_counts_rule_hits(self, tmp_path):
        bad = tmp_path / "injected.py"
        bad.write_text(self.INJECTED)
        summary = tmp_path / "summary.md"
        result = _run_cli(str(bad), "--summary", str(summary))
        assert result.returncode == 1
        table = summary.read_text()
        assert "| `raw-lambda-predicate` | 1 |" in table
        assert "| `unseeded-rng` | 1 |" in table
        assert "| `bare-except` | 0 |" in table

    def test_rule_counts_cover_all_rules(self, tmp_path):
        bad = tmp_path / "injected.py"
        bad.write_text(self.INJECTED)
        counts = rule_counts(lint_file(bad))
        assert set(counts) == set(ALL_RULES)
        assert counts["raw-lambda-predicate"] == 1
        assert counts["unseeded-rng"] == 1


class TestSelfTestCatchesRegressions:
    def test_self_test_cli_green(self):
        result = _run_cli("--self-test")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "self-test OK" in result.stdout

    def test_self_test_fails_on_unexpected_hit(self, tmp_path, monkeypatch):
        """A fixture whose expectations don't match reality must fail."""
        import lint_invariants
        fixture_dir = tmp_path / "fixtures"
        fixture_dir.mkdir()
        (fixture_dir / "wrong.py").write_text(
            "# expect: bare-except\n"
            "x = 1\n"   # no violation at all -> expectation mismatch
        )
        monkeypatch.setattr(lint_invariants, "FIXTURE_DIR", fixture_dir)
        assert lint_invariants.run_self_test() == 1
