"""Shared fixtures for the GenBase reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.spec import default_parameters
from repro.datagen import GenBaseDataset


@pytest.fixture(scope="session")
def tiny_dataset() -> GenBaseDataset:
    """One deterministic tiny dataset shared across the whole session."""
    return GenBaseDataset.generate("tiny", seed=7)


@pytest.fixture(scope="session")
def small_dataset() -> GenBaseDataset:
    """One deterministic small dataset for the heavier integration tests."""
    return GenBaseDataset.generate("small", seed=11)


@pytest.fixture(scope="session")
def tiny_parameters(tiny_dataset):
    return default_parameters(tiny_dataset.spec)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
