"""Tests for the R-like environment (data frame, IO, stats)."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.plan import col
from repro.rlang import (
    DataFrame,
    REnvironment,
    RMemoryError,
    biclust,
    cov,
    dataframe_from_csv_string,
    dataframe_to_csv_string,
    enrichment,
    lm,
    read_csv,
    svd,
    wilcox_test,
    write_csv,
)


@pytest.fixture()
def frame(rng) -> DataFrame:
    return DataFrame(
        {
            "gene_id": np.arange(30),
            "function": rng.integers(0, 50, 30),
            "length": rng.integers(100, 1000, 30),
        }
    )


class TestDataFrame:
    def test_construction_checks(self, rng):
        with pytest.raises(ValueError):
            DataFrame({})
        with pytest.raises(ValueError):
            DataFrame({"a": np.arange(3), "b": np.arange(4)})
        with pytest.raises(ValueError):
            DataFrame({"a": rng.random((3, 2))})

    def test_basic_accessors(self, frame):
        assert len(frame) == 30
        assert frame.names == ["gene_id", "function", "length"]
        assert "gene_id" in frame
        with pytest.raises(KeyError):
            frame["missing"]
        head = frame.head(3)
        assert len(head["gene_id"]) == 3

    def test_subset_and_select(self, frame):
        subset = frame.subset(col("function") < 25)
        assert np.all(subset["function"] < 25)
        selected = subset.select(["gene_id"])
        assert selected.names == ["gene_id"]
        with pytest.raises(KeyError):
            frame.subset(col("missing") < 1)
        with pytest.warns(DeprecationWarning), pytest.raises(ValueError):
            frame.subset(lambda f: np.array([True]))

    def test_subset_legacy_callable_warns_and_matches(self, frame):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            legacy = frame.subset(lambda f: f["function"] < 25)
        expression = frame.subset(col("function") < 25)
        for name in frame.names:
            np.testing.assert_array_equal(legacy[name], expression[name])

    def test_order_by(self, frame):
        ordered = frame.order_by("length")
        assert np.all(np.diff(ordered["length"]) >= 0)
        reverse = frame.order_by("length", decreasing=True)
        assert np.all(np.diff(reverse["length"]) <= 0)

    def test_merge_inner_join(self, rng):
        left = DataFrame({"key": np.array([1, 2, 2, 3]), "x": np.arange(4.0)})
        right = DataFrame({"key": np.array([2, 3, 4]), "y": np.array([10.0, 20.0, 30.0])})
        merged = left.merge(right, by="key")
        assert len(merged) == 3  # keys 2 (twice) and 3
        assert set(merged.names) == {"key", "x", "y"}

    def test_merge_suffixes_colliding_columns(self):
        left = DataFrame({"key": np.array([1, 2]), "value": np.array([1.0, 2.0])})
        right = DataFrame({"key": np.array([1, 2]), "value": np.array([3.0, 4.0])})
        merged = left.merge(right, by="key")
        assert "value_y" in merged.names

    def test_merge_different_key_names(self):
        left = DataFrame({"a": np.array([1, 2])})
        right = DataFrame({"b": np.array([2, 3]), "v": np.array([1.0, 2.0])})
        merged = left.merge(right, by="a", by_other="b")
        assert len(merged) == 1

    def test_sample_rows_deterministic(self, frame):
        first = frame.sample_rows(0.3, seed=2)
        second = frame.sample_rows(0.3, seed=2)
        np.testing.assert_array_equal(first["gene_id"], second["gene_id"])
        with pytest.raises(ValueError):
            frame.sample_rows(1.5)

    def test_as_matrix_and_pivot(self, rng):
        frame = DataFrame(
            {
                "patient_id": np.repeat(np.arange(4), 3),
                "gene_id": np.tile(np.arange(3), 4),
                "value": rng.random(12),
            }
        )
        matrix, rows, cols = frame.pivot_matrix("patient_id", "gene_id", "value")
        assert matrix.shape == (4, 3)
        as_matrix = frame.as_matrix(["value"])
        assert as_matrix.shape == (12, 1)

    def test_memory_limit_on_construction(self):
        environment = REnvironment(max_cells=10)
        with pytest.raises(RMemoryError):
            DataFrame({"x": np.arange(100)}, environment=environment)

    def test_memory_limit_on_pivot(self, rng):
        environment = REnvironment(max_cells=10_000)
        frame = DataFrame(
            {
                "patient_id": np.repeat(np.arange(200), 10),
                "gene_id": np.tile(np.arange(10), 200),
                "value": rng.random(2000),
            },
            environment=environment,
        )
        # The long frame fits, but a 200x10 pivot plus live frames exceeds nothing;
        # shrink the limit to force the pivot itself to fail.
        environment.max_cells = 500
        with pytest.raises(RMemoryError):
            frame.pivot_matrix("patient_id", "gene_id", "value")

    def test_total_bytes_limit(self):
        environment = REnvironment(max_total_bytes=100)
        with pytest.raises(RMemoryError):
            DataFrame({"x": np.arange(1000, dtype=np.float64)}, environment=environment)


class TestIO:
    def test_csv_roundtrip(self, frame):
        payload = dataframe_to_csv_string(frame)
        restored = dataframe_from_csv_string(payload)
        assert restored.names == frame.names
        np.testing.assert_allclose(restored["length"], frame["length"].astype(float))

    def test_write_and_read_file(self, frame, tmp_path):
        path = tmp_path / "frame.csv"
        n_rows = write_csv(frame, path)
        assert n_rows == len(frame)
        restored = read_csv(path)
        assert len(restored) == len(frame)

    def test_read_csv_mixed_types(self):
        payload = "id,name\n1,alice\n2,bob\n"
        frame = read_csv(io.StringIO(payload))
        assert frame["name"].dtype.kind in ("U", "O")
        np.testing.assert_array_equal(frame["id"], [1.0, 2.0])

    def test_read_csv_empty_body(self):
        frame = read_csv(io.StringIO("a,b\n"))
        assert len(frame) == 0
        with pytest.raises(ValueError):
            read_csv(io.StringIO(""))


class TestStats:
    def test_lm_array_and_frame_forms(self, rng):
        features = rng.random((60, 3))
        target = features @ np.array([1.0, 2.0, 3.0]) + 0.5
        fit = lm(features, target)
        np.testing.assert_allclose(fit.coefficients, [1.0, 2.0, 3.0], atol=1e-8)
        frame = DataFrame(
            {"a": features[:, 0], "b": features[:, 1], "c": features[:, 2], "y": target}
        )
        fit2 = lm(frame, feature_names=["a", "b", "c"], target_name="y")
        np.testing.assert_allclose(fit2.coefficients, fit.coefficients, atol=1e-10)
        with pytest.raises(ValueError):
            lm(frame)
        with pytest.raises(ValueError):
            lm(features)

    def test_cov_and_svd(self, rng):
        matrix = rng.random((30, 8))
        np.testing.assert_allclose(cov(matrix), np.cov(matrix, rowvar=False), atol=1e-12)
        result = svd(matrix, k=4)
        np.testing.assert_allclose(
            result.singular_values, np.linalg.svd(matrix, compute_uv=False)[:4], atol=1e-6
        )

    def test_biclust_and_wilcox(self, rng):
        matrix = rng.random((20, 15))
        result = biclust(matrix, n_biclusters=2)
        assert len(result) == 2
        test = wilcox_test(rng.random(20) + 1.0, rng.random(20))
        assert test.p_value < 0.05

    def test_enrichment_wrapper(self, rng):
        scores = rng.random(50)
        membership = (rng.random((50, 5)) < 0.2).astype(np.int8)
        result = enrichment(scores, membership, alpha=0.1)
        assert result.alpha == 0.1
        assert len(result.p_values) == 5
