"""The delta-store trust battery: snapshot equivalence + concurrency.

Three layers of evidence that the writable tier (``repro.colstore.delta``)
is safe to put under the analytics paths:

- **Unit tests** pin the write API's contracts: version monotonicity,
  dtype admission (no silent float→int truncation, no clipped strings),
  deletion idempotence, atomic updates, compaction generations.
- **Property tests (hypothesis)**: for random interleavings of
  append/delete/compact over a table holding all four encodings, and for
  every plan shape (filter / aggregate / pivot / sketch approx), a
  snapshot's answer is bit-identical to a fresh store loaded with exactly
  that snapshot's logical rows.  ``sample`` shapes are excluded by design:
  the sample is a pure function of *row positions*, and compaction
  renumbers positions — the logical content is equal but the drawn rows
  legitimately differ (same reason the fuzzer's mutation prelude skips
  the sample shape).
- **Concurrency tests**: writer threads appending while reader threads
  hold snapshots — no torn state, monotone versions, and a snapshot held
  across a compaction keeps answering from its own generation.  All
  assertions are content-based (never timing-based): a snapshot's version
  must exactly determine its row count, so any torn publish is caught as
  arithmetic, not as a race we hope to observe.

Aggregate values are integer-valued floats throughout: RLE run folding
reassociates float addition (documented last-ulp caveat), and integer
sums are exact under any association, which is what makes the
bit-identical comparison legitimate.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys
import threading

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.colstore import ColumnStore, ColumnTable, ColumnVector
from repro.colstore.delta import DeltaStore, MergedColumn, merge_group_parts
from repro.colstore.planner import run_plan
from repro.plan import col
from repro.plan.logical import Aggregate, ApproxAggregate, Filter, Pivot, Scan

COLUMNS = ("rid", "grp", "run", "val")


def _seed_arrays(n: int, seed: int) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    return {
        "rid": np.arange(n, dtype=np.int64),
        "grp": rng.choice(np.array(["a", "b", "c"]), n),
        "run": np.sort(rng.integers(0, 4, n)).astype(np.int64),
        "val": rng.integers(-50, 50, n).astype(np.float64),
    }


def _sealed_four_encodings(n: int, seed: int) -> ColumnTable:
    """One column per encoding, forced, so every fast path is exercised."""
    arrays = _seed_arrays(n, seed)
    return ColumnTable("events", [
        ColumnVector("rid", arrays["rid"], encoding="delta"),
        ColumnVector("grp", arrays["grp"], encoding="dictionary"),
        ColumnVector("run", arrays["run"], encoding="rle"),
        ColumnVector("val", arrays["val"], encoding="plain"),
    ])


def _store_with(table: ColumnTable) -> ColumnStore:
    store = ColumnStore("delta-test")
    store.register(table)
    return store


def _append_batch(store: ColumnStore, seed: int) -> None:
    rng = np.random.default_rng(seed)
    k = int(rng.integers(1, 8))
    store.append("events", {
        "rid": rng.integers(0, 1000, k),
        "grp": rng.choice(np.array(["a", "b", "c", "d"]), k),
        "run": rng.integers(0, 5, k),
        "val": rng.integers(-50, 50, k).astype(np.float64),
    })


def _delete_some(store: ColumnStore, seed: int) -> None:
    """Delete a random subset of live rows, always leaving at least one."""
    rng = np.random.default_rng(seed)
    snapshot = store.snapshot("events")
    live = snapshot.live_selection()
    if live is None:
        live = np.arange(snapshot.row_count, dtype=np.int64)
    if len(live) <= 1:
        return
    count = int(rng.integers(1, len(live)))
    store.delete("events", rng.choice(live, size=count, replace=False))


def _apply_ops(store: ColumnStore, ops) -> None:
    for kind, op_seed in ops:
        if kind == "append":
            _append_batch(store, op_seed)
        elif kind == "delete":
            _delete_some(store, op_seed)
        else:
            store.compact("events")


# ---------------------------------------------------------------------------- #
# Unit: write API contracts
# ---------------------------------------------------------------------------- #


class TestDeltaStoreBasics:
    def test_versions_start_at_zero_and_count_every_write(self):
        store = _store_with(_sealed_four_encodings(20, seed=1))
        assert store.store_version("events") == 0
        v1 = store.append("events", _seed_arrays(3, seed=2))
        v2 = store.delete("events", [0, 5])
        v3 = store.compact("events")
        assert (v1, v2, v3) == (1, 2, 3)
        assert store.store_version("events") == 3

    def test_append_rejects_schema_mismatch(self):
        store = _store_with(_sealed_four_encodings(10, seed=1))
        with pytest.raises(ValueError, match="missing.*val"):
            store.append("events", {"rid": [1], "grp": ["a"], "run": [0]})
        with pytest.raises(ValueError, match="unexpected"):
            store.append("events", {**_seed_arrays(1, 2), "bogus": [1]})
        with pytest.raises(ValueError, match="expected"):
            store.append("events", {"rid": [1, 2], "grp": ["a"], "run": [0], "val": [1.0]})
        empty = {name: values[:0] for name, values in _seed_arrays(1, 2).items()}
        with pytest.raises(ValueError, match="at least one row"):
            store.append("events", empty)

    def test_append_refuses_lossy_casts(self):
        store = _store_with(_sealed_four_encodings(10, seed=1))
        bad = _seed_arrays(1, 2)
        bad["rid"] = np.array([1.5])  # float into an int64 column
        with pytest.raises(TypeError):
            store.append("events", bad)
        wide = _seed_arrays(1, 2)
        wide["grp"] = np.array(["toolong"])  # <U1 column
        with pytest.raises(ValueError, match="too wide"):
            store.append("events", wide)

    def test_delete_validates_range_and_is_idempotent(self):
        store = _store_with(_sealed_four_encodings(10, seed=1))
        with pytest.raises(IndexError):
            store.delete("events", [10])
        with pytest.raises(IndexError):
            store.delete("events", [-1])
        store.delete("events", [3, 4])
        store.delete("events", [3, 4])  # no-op on content
        assert store.live_row_count("events") == 8
        np.testing.assert_array_equal(
            store.query("events").column("rid"),
            [0, 1, 2, 5, 6, 7, 8, 9],
        )

    def test_rows_appended_after_a_delete_are_live(self):
        store = _store_with(_sealed_four_encodings(5, seed=1))
        store.delete("events", [0])
        store.append("events", _seed_arrays(3, seed=9))
        assert store.live_row_count("events") == 7
        # The bitmap is shorter than the logical space; the new tail rows
        # are implicitly live and deletable by their logical ids.
        store.delete("events", [5])  # first appended row
        assert store.live_row_count("events") == 6

    def test_update_is_one_version_and_replaces_rows(self):
        store = _store_with(_sealed_four_encodings(6, seed=1))
        before = store.store_version("events")
        store.update("events", [2], {
            "rid": [99], "grp": ["b"], "run": [1], "val": [7.0],
        })
        assert store.store_version("events") == before + 1
        rid = store.query("events").column("rid")
        assert 2 not in rid.tolist() and 99 in rid.tolist()
        assert store.live_row_count("events") == 6

    def test_delete_where_uses_plan_expressions(self):
        store = _store_with(_sealed_four_encodings(30, seed=3))
        removed = store.delete_where("events", col("val") >= 0)
        assert removed == int((_seed_arrays(30, 3)["val"] >= 0).sum())
        assert (store.query("events").column("val") < 0).all()
        assert store.delete_where("events", col("val") >= 0) == 0

    def test_compact_reseals_generation_and_preserves_content(self):
        store = _store_with(_sealed_four_encodings(40, seed=5))
        _append_batch(store, 11)
        _delete_some(store, 12)
        expected = store.snapshot("events").logical_arrays()
        delta = store.writable("events")
        assert delta.generation == 0
        store.compact("events")
        assert delta.generation == 1
        assert delta.tail_rows == 0 and delta.deleted_count == 0
        for name in COLUMNS:
            np.testing.assert_array_equal(store.query("events").column(name),
                                          expected[name])
        # The resealed segment is a real compressed table again.
        assert "+tail" not in " ".join(store.table("events").encodings().values())

    def test_snapshot_is_immune_to_later_writes_and_compaction(self):
        store = _store_with(_sealed_four_encodings(25, seed=6))
        _append_batch(store, 21)
        snapshot = store.snapshot("events")
        frozen = snapshot.logical_arrays()
        store.delete("events", [0, 1, 2])
        _append_batch(store, 22)
        store.compact("events")
        _append_batch(store, 23)
        assert snapshot.generation == 0
        for name in COLUMNS:
            np.testing.assert_array_equal(snapshot.query().column(name), frozen[name])

    def test_should_compact_thresholds_on_tail_plus_deletions(self):
        store = _store_with(_sealed_four_encodings(100, seed=7))
        delta = store.writable("events")
        assert not delta.should_compact()
        store.delete("events", np.arange(20))
        store.append("events", _seed_arrays(10, seed=8))
        assert delta.should_compact(tail_fraction=0.25)
        assert not delta.should_compact(tail_fraction=0.5)
        assert delta.maybe_compact(tail_fraction=0.25)
        assert not delta.maybe_compact(tail_fraction=0.25)

    def test_sealed_table_view_versus_logical_view(self):
        store = _store_with(_sealed_four_encodings(10, seed=1))
        store.append("events", _seed_arrays(5, seed=2))
        store.delete("events", [0])
        assert store.table("events").row_count == 10  # sealed only
        assert store.effective_table("events").row_count == 15  # logical space
        assert store.live_row_count("events") == 14
        described = store.describe()["events"]
        assert described["rows"] == 14
        assert described["encodings"]["rid"] == "delta+tail"

    def test_merged_column_surface(self):
        store = _store_with(_sealed_four_encodings(12, seed=9))
        store.append("events", _seed_arrays(4, seed=10))
        column = store.effective_table("events").column("val")
        assert isinstance(column, MergedColumn)
        assert len(column) == 16
        assert not column.supports_distinct_pushdown
        full = column.values()
        np.testing.assert_array_equal(column.take(np.array([-1, 0, 13])),
                                      full[[-1, 0, 13]])
        np.testing.assert_array_equal(column.isin(np.array([0.0, 3.0])),
                                      np.isin(full, [0.0, 3.0]))
        stats = column.stats()
        assert stats.row_count == 16 and stats.distinct is None
        assert stats.minimum == full.min() and stats.maximum == full.max()

    def test_merge_group_parts_rejects_mean(self):
        part = (np.array([1]), np.array([2.0]))
        with pytest.raises(ValueError, match="mean"):
            merge_group_parts([part, part], "mean", np.dtype(np.int64))


# ---------------------------------------------------------------------------- #
# Property: snapshot ≡ fresh store over its logical rows
# ---------------------------------------------------------------------------- #

_OPS = st.lists(
    st.tuples(st.sampled_from(["append", "delete", "compact"]),
              st.integers(0, 2**16)),
    min_size=1, max_size=6,
)


def _fresh_equivalent(store: ColumnStore) -> ColumnStore:
    """A brand-new store loaded with exactly the snapshot's logical rows."""
    fresh = ColumnStore("fresh")
    fresh.create_table("events", store.snapshot("events").logical_arrays())
    return fresh


def _plan_suite(threshold: int):
    scan = Scan("events")
    filtered = Filter(scan, col("val") > threshold)
    plans = [filtered]
    plans += [Aggregate(scan, "grp", "val", fn)
              for fn in ("sum", "count", "min", "max", "mean")]
    plans += [Aggregate(filtered, "run", "val", "sum"),
              Pivot(scan, "grp", "run", "val"),
              ApproxAggregate(scan, "rid", "approx_distinct"),
              ApproxAggregate(filtered, "val", "approx_quantile", quantile=0.7)]
    return plans


def _assert_same_answer(plan, store, fresh):
    for optimized in (True, False):
        got = run_plan(plan, store, optimized=optimized)
        want = run_plan(plan, fresh, optimized=optimized)
        if isinstance(plan, ApproxAggregate):
            # assert_array_equal treats NaN == NaN (an empty filtered
            # child legitimately yields a NaN quantile on both sides).
            np.testing.assert_array_equal(
                np.array([got.estimate, got.ci_low, got.ci_high], dtype=float),
                np.array([want.estimate, want.ci_low, want.ci_high], dtype=float),
            )
        elif isinstance(got, tuple):
            for mine, theirs in zip(got, want, strict=True):
                np.testing.assert_array_equal(mine, theirs)
        else:
            for name in COLUMNS:
                np.testing.assert_array_equal(got.column(name), want.column(name))


def _check_scenario(n0, data_seed, threshold, ops):
    store = _store_with(_sealed_four_encodings(n0, data_seed))
    _apply_ops(store, ops)
    fresh = _fresh_equivalent(store)
    for plan in _plan_suite(threshold):
        _assert_same_answer(plan, store, fresh)


class TestSnapshotEquivalence:
    @given(n0=st.integers(10, 40), data_seed=st.integers(0, 2**16),
           threshold=st.integers(-40, 40), ops=_OPS)
    @settings(max_examples=40, derandomize=True, deadline=None)
    def test_mutated_store_matches_fresh_reload(self, n0, data_seed, threshold, ops):
        """PR profile: bounded, derandomized."""
        _check_scenario(n0, data_seed, threshold, ops)

    @pytest.mark.slow
    @given(n0=st.integers(10, 80), data_seed=st.integers(0, 2**20),
           threshold=st.integers(-50, 50), ops=_OPS)
    @settings(max_examples=250, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_mutated_store_matches_fresh_reload_deep(self, n0, data_seed,
                                                     threshold, ops):
        """Nightly profile: many more examples, randomized exploration."""
        _check_scenario(n0, data_seed, threshold, ops)


# ---------------------------------------------------------------------------- #
# Concurrency: writers, readers, compactor
# ---------------------------------------------------------------------------- #

BATCH = 7  # every concurrent append is exactly this many rows


def _concurrent_store(n0: int = 200) -> ColumnStore:
    rng = np.random.default_rng(7)
    store = ColumnStore("conc")
    store.create_table("events", {
        "batch": np.full(n0, -1, dtype=np.int64),  # sealed rows marked -1
        "val": rng.integers(0, 100, n0).astype(np.float64),
    })
    return store


def _marked_batch(marker: int) -> dict[str, np.ndarray]:
    return {
        "batch": np.full(BATCH, marker, dtype=np.int64),
        "val": np.full(BATCH, float(marker % 13), dtype=np.float64),
    }


def _run_threads(workers: list[threading.Thread]) -> None:
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=120)
        assert not worker.is_alive(), "worker thread did not finish"


class TestConcurrency:
    def test_readers_never_see_torn_appends_and_versions_are_monotone(self):
        """N append-only writers, M snapshotting readers, no sleeps.

        With appends as the only writes, a snapshot's version *is* the
        number of batches it can see, so ``rows == n0 + version * BATCH``
        must hold exactly — a torn publish (rows visible before the
        version, or a half-visible chunk) breaks the arithmetic.  Each
        visible batch must appear with all-or-none of its rows.
        """
        n0, writers, readers, batches = 200, 4, 3, 15
        store = _concurrent_store(n0)
        store.writable("events")  # attach the delta before threads race
        errors: list[str] = []
        gate = threading.Barrier(writers + readers)
        done = threading.Event()

        def write(writer_id: int) -> None:
            gate.wait()
            for i in range(batches):
                store.append("events", _marked_batch(writer_id * 1000 + i))

        def read() -> None:
            gate.wait()
            last_version = -1
            while True:
                finished = done.is_set()  # read *before* snapshotting
                snapshot = store.snapshot("events")
                if snapshot.version < last_version:
                    errors.append(
                        f"version went backwards: {last_version} -> "
                        f"{snapshot.version}"
                    )
                last_version = snapshot.version
                markers = snapshot.query().column("batch")
                if len(markers) != n0 + snapshot.version * BATCH:
                    errors.append(
                        f"torn state: version {snapshot.version} but "
                        f"{len(markers)} rows"
                    )
                counts = np.unique(markers[markers >= 0], return_counts=True)[1]
                if counts.size and not (counts == BATCH).all():
                    errors.append(f"half-visible batch: counts {counts}")
                if finished:
                    break

        threads = [threading.Thread(target=write, args=(w,)) for w in range(writers)]
        threads += [threading.Thread(target=read) for _ in range(readers)]
        writer_threads, reader_threads = threads[:writers], threads[writers:]
        for thread in threads:
            thread.start()
        for thread in writer_threads:
            thread.join(timeout=120)
            assert not thread.is_alive()
        done.set()
        for thread in reader_threads:
            thread.join(timeout=120)
            assert not thread.is_alive()
        assert not errors, errors[:5]
        final = store.snapshot("events")
        assert final.version == writers * batches
        assert final.live_rows == n0 + writers * batches * BATCH
        markers, counts = np.unique(final.query().column("batch"),
                                    return_counts=True)
        assert counts[markers >= 0].tolist() == [BATCH] * (writers * batches)

    def test_reads_are_constant_under_a_racing_compactor(self):
        """Compaction preserves logical content, so every read answer —
        across generations, mid-swap, whenever — must equal the baseline."""
        store = _concurrent_store(300)
        store.append("events", _marked_batch(1))
        store.delete("events", np.arange(0, 50))
        baseline_keys, baseline_sums = store.query("events").group_aggregate(
            "batch", "val", "sum")
        delta = store.writable("events")
        errors: list[str] = []
        done = threading.Event()

        def compact_repeatedly() -> None:
            for _ in range(30):
                delta.compact()
            done.set()

        def read() -> None:
            while True:
                finished = done.is_set()
                keys, sums = store.query("events").group_aggregate(
                    "batch", "val", "sum")
                if not (np.array_equal(keys, baseline_keys)
                        and np.array_equal(sums, baseline_sums)):
                    errors.append("aggregate drifted during compaction")
                if finished:
                    break

        _run_threads([threading.Thread(target=compact_repeatedly)]
                     + [threading.Thread(target=read) for _ in range(3)])
        assert not errors, errors[:3]
        assert delta.generation == 30

    def test_snapshot_acquired_mid_compaction_answers_from_its_generation(self):
        store = _concurrent_store(150)
        store.append("events", _marked_batch(5))
        delta = store.writable("events")
        captured: list = []
        done = threading.Event()

        def compact_repeatedly() -> None:
            for _ in range(25):
                delta.compact()
            done.set()

        def snapshotter() -> None:
            while True:
                finished = done.is_set()
                snapshot = store.snapshot("events")
                captured.append(
                    (snapshot.generation, snapshot.version,
                     snapshot.query().column("val").sum())
                )
                if finished:
                    break

        _run_threads([threading.Thread(target=compact_repeatedly),
                      threading.Thread(target=snapshotter)])
        expected = store.query("events").column("val").sum()
        generations = {generation for generation, _, _ in captured}
        for generation, version, total in captured:
            assert total == expected  # content identical in every generation
            assert version >= generation
        assert generations <= set(range(26))
        # Writes after the fact never leak into an already-held snapshot.
        held = store.snapshot("events")
        held_rows = held.live_rows
        store.append("events", _marked_batch(9))
        delta.compact()
        assert held.live_rows == held_rows
        assert held.generation < delta.generation

    def test_mixed_writers_and_compactor_keep_integrity(self):
        """Appends + a compactor racing: every batch survives exactly whole."""
        n0, writers, batches = 120, 3, 10
        store = _concurrent_store(n0)
        delta = store.writable("events")
        errors: list[str] = []
        gate = threading.Barrier(writers + 2)
        done = threading.Event()

        def write(writer_id: int) -> None:
            gate.wait()
            for i in range(batches):
                store.append("events", _marked_batch(writer_id * 1000 + i))

        def compact_repeatedly() -> None:
            gate.wait()
            while not done.is_set():
                delta.maybe_compact(tail_fraction=0.05)

        def read() -> None:
            gate.wait()
            last_version = -1
            while True:
                finished = done.is_set()
                snapshot = store.snapshot("events")
                if snapshot.version < last_version:
                    errors.append("version went backwards")
                last_version = snapshot.version
                markers = snapshot.query().column("batch")
                counts = np.unique(markers[markers >= 0], return_counts=True)[1]
                if counts.size and not (counts == BATCH).all():
                    errors.append(f"half-visible batch: counts {counts}")
                if finished:
                    break

        writer_threads = [threading.Thread(target=write, args=(w,))
                          for w in range(writers)]
        other = [threading.Thread(target=compact_repeatedly),
                 threading.Thread(target=read)]
        for thread in writer_threads + other:
            thread.start()
        for thread in writer_threads:
            thread.join(timeout=120)
            assert not thread.is_alive()
        done.set()
        for thread in other:
            thread.join(timeout=120)
            assert not thread.is_alive()
        assert not errors, errors[:5]
        markers, counts = np.unique(store.query("events").column("batch"),
                                    return_counts=True)
        assert counts[markers >= 0].tolist() == [BATCH] * (writers * batches)
        assert int(counts[markers == -1][0]) == n0


# ---------------------------------------------------------------------------- #
# Regression: synopsis cache staleness after writes
# ---------------------------------------------------------------------------- #


class TestSynopsisStaleness:
    def test_post_append_approx_answer_reflects_the_new_rows(self):
        """A synopsis drawn before an append must not answer after it.

        The cache used to key on ``(kind, table, fraction, seed)`` only;
        the cached selection then silently excluded appended rows from
        every later approximate answer.  With the store version in the key
        (plus eager invalidation on write), the post-append answer is
        bit-identical to a fresh store loaded with the same logical rows.
        """
        store = _store_with(_sealed_four_encodings(60, seed=13))
        plan = ApproxAggregate(Scan("events"), "val", "approx_sum",
                               fraction=0.5, seed=3)
        before = run_plan(plan, store)
        assert len(store.synopses) == 1
        store.append("events", {
            "rid": np.arange(60, 90), "grp": np.full(30, "c"),
            "run": np.full(30, 9, dtype=np.int64),
            "val": np.full(30, 10_000.0),
        })
        after = run_plan(plan, store)
        expected = run_plan(plan, _fresh_equivalent(store))
        assert (after.estimate, after.ci_low, after.ci_high) == \
               (expected.estimate, expected.ci_low, expected.ci_high)
        # 30 rows of 10k among 90 must move a 50% sample's sum estimate.
        assert after.estimate != before.estimate
        # The write hook dropped the stale entry — one live synopsis only.
        assert len(store.synopses) == 1
        (key,) = store.synopses.describe()
        assert key[-1] == store.store_version("events")

    def test_uniform_synopsis_cache_hits_within_a_version(self):
        store = _store_with(_sealed_four_encodings(50, seed=17))
        first = store.synopses.uniform("events", 0.4, seed=2)
        again = store.synopses.uniform("events", 0.4, seed=2)
        assert first is again
        store.append("events", _seed_arrays(5, seed=18))
        redrawn = store.synopses.uniform("events", 0.4, seed=2)
        assert redrawn is not first
        inline = store.query("events").sample(0.4, 2).selection
        np.testing.assert_array_equal(redrawn, inline)

    def test_stratified_synopsis_covers_post_append_strata(self):
        store = _store_with(_sealed_four_encodings(40, seed=19))
        store.append("events", {
            "rid": [400], "grp": ["d"], "run": [8], "val": [1.0],
        })
        selection = store.synopses.stratified("events", "grp", 0.2, seed=4)
        sampled_groups = store.effective_table("events").column("grp").take(selection)
        assert "d" in sampled_groups.tolist()  # the new stratum is represented

    def test_stratified_synopsis_skips_deleted_rows(self):
        store = _store_with(_sealed_four_encodings(40, seed=23))
        deleted = np.arange(0, 10)
        store.delete("events", deleted)
        selection = store.synopses.stratified("events", "grp", 0.5, seed=6)
        assert not np.intersect1d(selection, deleted).size


class TestDeltaScanGateTrips:
    """The committed delta_scan entry is gated and its gate is live.

    The bench op times the merged sealed/tail scan against the
    always-decode merge it replaced and against the sealed-only scan
    (recorded as ``sealed_only_s``).  These tests pin both halves of the
    claim: the committed record actually holds the 1.2x tail-overhead
    bound, and a candidate that regresses to always-decode behaviour
    demonstrably fails CI.
    """

    REPO = pathlib.Path(__file__).resolve().parent.parent
    GATE = REPO / "benchmarks" / "check_bench_regression.py"
    RECORD = REPO / "BENCH_colstore.json"

    def _run_gate(self, candidate: pathlib.Path) -> subprocess.CompletedProcess:
        return subprocess.run(
            [sys.executable, str(self.GATE), "--candidate", str(candidate)],
            capture_output=True, text=True,
        )

    def _delta_entry(self, record: dict) -> dict:
        (entry,) = [e for e in record["results"] if e["op"] == "delta_scan"]
        return entry

    def test_committed_record_gates_a_real_speedup(self):
        entry = self._delta_entry(json.loads(self.RECORD.read_text()))
        assert entry["gated"] is True
        assert entry["speedup"] > 1.0

    def test_committed_record_holds_the_tail_overhead_bound(self):
        entry = self._delta_entry(json.loads(self.RECORD.read_text()))
        # The bench asserts this before recording; the committed numbers
        # must still show it (same bound, same noise floor).
        assert entry["compressed_s"] <= 1.2 * entry["sealed_only_s"] + 200e-6

    def test_simulated_always_decode_tail_merge_trips_the_gate(self, tmp_path):
        record = json.loads(self.RECORD.read_text())
        entry = self._delta_entry(record)
        # Simulate losing MergedColumn: every scan of a written table
        # decodes the sealed segment and concatenates the tail, so the
        # merged path costs what the always-decode baseline costs.
        entry["compressed_s"] = entry["baseline_s"]
        entry["speedup"] = 1.0
        candidate = tmp_path / "doctored.json"
        candidate.write_text(json.dumps(record))
        result = self._run_gate(candidate)
        assert result.returncode == 1
        assert "REGRESSION" in result.stdout
        assert "delta_scan" in result.stdout
