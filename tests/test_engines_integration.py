"""Integration tests: every engine configuration × every query it supports.

These are the benchmark's end-to-end correctness tests: each engine's answer
is validated against the engine-independent reference implementation on the
shared tiny dataset.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import QUERY_NAMES, BenchmarkRunner, ReferenceImplementation
from repro.core.engines import MULTI_NODE_ENGINES, SINGLE_NODE_ENGINES, make_engine
from repro.core.runner import RunStatus

#: (engine, query) combinations the paper itself marks as unsupported.
EXPECTED_UNSUPPORTED = {
    ("postgres-madlib", "biclustering"),
    ("hadoop", "biclustering"),
    ("hadoop-cluster", "biclustering"),
}


@pytest.fixture(scope="module")
def runner() -> BenchmarkRunner:
    return BenchmarkRunner(timeout_seconds=120, verify=False)


@pytest.fixture(scope="module")
def reference(tiny_dataset):
    implementation = ReferenceImplementation(tiny_dataset)
    return {query: implementation.run(query) for query in QUERY_NAMES}


@pytest.fixture(scope="module")
def loaded_single_node_engines(tiny_dataset):
    engines = {}
    for name in SINGLE_NODE_ENGINES:
        engine = make_engine(name)
        engine.load(tiny_dataset)
        engines[name] = engine
    return engines


class TestSingleNodeEngines:
    @pytest.mark.parametrize("engine_name", SINGLE_NODE_ENGINES)
    @pytest.mark.parametrize("query", QUERY_NAMES)
    def test_engine_matches_reference(self, engine_name, query, runner, reference,
                                      loaded_single_node_engines, tiny_dataset):
        engine = loaded_single_node_engines[engine_name]
        result = runner.run(query, engine, tiny_dataset)
        if (engine_name, query) in EXPECTED_UNSUPPORTED:
            assert result.status is RunStatus.UNSUPPORTED
            return
        assert result.status is RunStatus.OK, result.error
        expected = reference[query].summary
        actual = result.output.summary
        # Selection cardinalities must match exactly.
        for key in ("n_selected_genes", "n_patients", "n_selected_patients",
                    "n_sampled_patients", "n_terms", "k"):
            if key in expected:
                assert actual[key] == expected[key], f"{key} differs for {engine_name}/{query}"
        # Numeric outcomes must agree closely.
        if "r_squared" in expected:
            assert actual["r_squared"] == pytest.approx(expected["r_squared"], abs=1e-6)
        if "top_singular_value" in expected:
            assert actual["top_singular_value"] == pytest.approx(
                expected["top_singular_value"], rel=1e-3
            )
        if "max_covariance" in expected:
            assert actual["max_covariance"] == pytest.approx(expected["max_covariance"], rel=1e-6)
        if "n_pairs_kept" in expected:
            assert actual["n_pairs_kept"] == expected["n_pairs_kept"]

    def test_phase_timing_recorded(self, runner, tiny_dataset, loaded_single_node_engines):
        result = runner.run("covariance", loaded_single_node_engines["postgres-r"], tiny_dataset)
        assert result.data_management_seconds > 0
        assert result.analytics_seconds > 0

    def test_external_r_engines_pay_export_cost(self, runner, tiny_dataset,
                                                loaded_single_node_engines):
        result = runner.run("svd", loaded_single_node_engines["postgres-r"], tiny_dataset)
        assert result.notes.get("export_bytes", 0) > 0

    def test_vanilla_r_memory_ceiling(self, tiny_dataset):
        runner = BenchmarkRunner()
        result = runner.run("covariance", "vanilla-r", tiny_dataset, max_cells=200)
        assert result.status is RunStatus.MEMORY_ERROR


class TestMultiNodeEngines:
    @pytest.mark.parametrize("engine_name", MULTI_NODE_ENGINES)
    @pytest.mark.parametrize("n_nodes", [1, 2, 4])
    def test_covariance_matches_reference(self, engine_name, n_nodes, runner,
                                          reference, tiny_dataset):
        result = runner.run("covariance", engine_name, tiny_dataset, n_nodes=n_nodes)
        assert result.status is RunStatus.OK, result.error
        expected = reference["covariance"].summary
        assert result.output.summary["n_selected_patients"] == expected["n_selected_patients"]
        assert result.output.summary["n_pairs_kept"] == expected["n_pairs_kept"]
        assert result.output.summary["max_covariance"] == pytest.approx(
            expected["max_covariance"], rel=1e-6
        )

    @pytest.mark.parametrize("engine_name", MULTI_NODE_ENGINES)
    def test_all_queries_run_on_two_nodes(self, engine_name, runner, reference, tiny_dataset):
        for query in QUERY_NAMES:
            result = runner.run(query, engine_name, tiny_dataset, n_nodes=2)
            if (engine_name, query) in EXPECTED_UNSUPPORTED:
                assert result.status is RunStatus.UNSUPPORTED
                continue
            assert result.status is RunStatus.OK, f"{engine_name}/{query}: {result.error}"
            if query == "regression":
                assert result.output.summary["r_squared"] == pytest.approx(
                    reference["regression"].summary["r_squared"], abs=0.05
                )
            if query == "svd":
                assert result.output.summary["top_singular_value"] == pytest.approx(
                    reference["svd"].summary["top_singular_value"], rel=1e-3
                )

    def test_multi_node_charges_network_time(self, tiny_dataset):
        runner = BenchmarkRunner()
        single = runner.run("covariance", "scidb-cluster", tiny_dataset, n_nodes=1)
        quad = runner.run("covariance", "scidb-cluster", tiny_dataset, n_nodes=4)
        assert single.status is RunStatus.OK and quad.status is RunStatus.OK
        # The 4-node run must include redistribution/communication time that
        # the single node run does not have.
        assert quad.notes is not None
        engine = make_engine("scidb-cluster", n_nodes=4)
        engine.load(tiny_dataset)
        runner.run("covariance", engine, tiny_dataset)
        assert engine.cluster.network.total_bytes > 0


class TestCoprocessorEngines:
    def test_phi_single_node_matches_reference(self, runner, reference, tiny_dataset):
        for query in ("covariance", "svd", "statistics", "biclustering", "regression"):
            result = runner.run(query, "scidb-phi", tiny_dataset)
            assert result.status is RunStatus.OK, result.error
            expected = reference[query].summary
            for key in ("n_selected_genes", "n_selected_patients", "n_sampled_patients"):
                if key in expected:
                    assert result.output.summary[key] == expected[key]

    def test_phi_analytics_time_is_modelled(self, tiny_dataset):
        runner = BenchmarkRunner()
        result = runner.run("covariance", "scidb-phi", tiny_dataset)
        engine_offloads = result.output.payload["offload"]
        # The timer holds the modelled device time, not the measured host time.
        assert result.analytics_seconds == pytest.approx(
            engine_offloads.device_total_seconds, rel=1e-6
        )

    def test_phi_cluster_runs_all_node_counts(self, runner, tiny_dataset):
        for n_nodes in (1, 2, 4):
            result = runner.run("svd", "scidb-phi-cluster", tiny_dataset, n_nodes=n_nodes)
            assert result.status is RunStatus.OK, result.error
            assert result.analytics_seconds > 0

    def test_phi_regression_not_offloaded(self, tiny_dataset):
        runner = BenchmarkRunner()
        engine = make_engine("scidb-phi")
        engine.load(tiny_dataset)
        runner.run("regression", engine, tiny_dataset)
        assert all(call.bytes_transferred == 0 or True for call in engine.runtime.device.offloads)
        # Regression must not appear among the offloaded kernels.
        runner.run("covariance", engine, tiny_dataset)
        assert len(engine.runtime.device.offloads) >= 1


class TestCrossEngineAgreement:
    def test_covariance_matrices_agree_between_engines(self, tiny_dataset,
                                                       loaded_single_node_engines, runner):
        results = {}
        for name in ("vanilla-r", "scidb", "columnstore-udf"):
            result = runner.run("covariance", loaded_single_node_engines[name], tiny_dataset)
            results[name] = result.output.payload["covariance"]
        base = results["vanilla-r"]
        for name, cov in results.items():
            np.testing.assert_allclose(cov, base, atol=1e-8, err_msg=name)

    def test_svd_spectra_agree_between_engines(self, tiny_dataset,
                                               loaded_single_node_engines, runner):
        spectra = {}
        for name in ("vanilla-r", "scidb", "columnstore-r"):
            result = runner.run("svd", loaded_single_node_engines[name], tiny_dataset)
            payload = result.output.payload
            spectra[name] = np.asarray(payload.singular_values)
        base = spectra["vanilla-r"]
        for name, values in spectra.items():
            np.testing.assert_allclose(values, base, rtol=1e-5, err_msg=name)
