"""The differential fuzzer: property tests, calibration gate, tolerances.

Three layers:

- **Properties** (hypothesis): every case the grammar can draw passes the
  full cross-engine differential check.  The PR profile is bounded and
  derandomized; the deep variant is marked ``slow`` and runs nightly.
- **Calibration gate**: the real fuzz run's report passes
  ``tools/check_cost_calibration.py``, and a report produced with every
  selectivity forced to 1.0 demonstrably trips it.
- **Units**: the shared tolerance table, plan/expression serialisation
  round-trips, and the reference executor's sample semantics.
"""

from __future__ import annotations

import json
import subprocess
import sys
import pathlib

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.queries import dataset_tables
from repro.datagen.dataset import GenBaseDataset
from repro.colstore import ColumnStore
from repro.fuzz.calibration import CalibrationRecord, q_error, write_report
from repro.fuzz.generate import (
    FuzzCase,
    FuzzSchema,
    MutationOp,
    case_from_seed,
    lower_mutations,
)
from repro.fuzz.harness import FuzzHarness
from repro.fuzz.reference import mutated_tables
from repro.fuzz.serialize import (
    expression_from_json,
    expression_to_json,
    plan_from_json,
    plan_to_json,
)
from repro.fuzz.strategies import fuzz_cases
from repro.fuzz.tolerances import (
    EXACT,
    ULP,
    aggregate_tolerance,
    assert_values_match,
    sketch_tolerance,
    summary_tolerance,
)
from repro.plan import Filter, Join, Pivot, Project, Scan, col
from repro.plan.logical import explain

REPO = pathlib.Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def harness() -> FuzzHarness:
    return FuzzHarness(size="tiny", dataset_seed=7)


def test_slow_marker_is_registered(pytestconfig):
    """A typo'd marker must fail collection, so the real one must exist."""
    markers = [line.split(":")[0] for line in pytestconfig.getini("markers")]
    assert "slow" in markers
    assert "--strict-markers" in pytestconfig.getini("addopts")


# hypothesis's @given needs the strategy at definition time, so the grammar
# schema is built module-level (cheap: tables only); the engine contexts
# come from one lazily-built shared harness.
_SCHEMA = FuzzSchema.from_tables(
    dataset_tables(GenBaseDataset.generate("tiny", seed=7))
)
_HARNESS_CACHE: list[FuzzHarness] = []


def _shared_harness() -> FuzzHarness:
    if not _HARNESS_CACHE:
        _HARNESS_CACHE.append(FuzzHarness(size="tiny", dataset_seed=7))
    return _HARNESS_CACHE[0]


@settings(max_examples=40, derandomize=True, deadline=None)
@given(data=fuzz_cases(_SCHEMA))
def test_fuzzed_plans_agree_across_engines(data: FuzzCase):
    """PR profile: bounded, derandomized differential property."""
    outcome = _shared_harness().check_case(data)
    assert outcome.record.observed_rows is not None


@pytest.mark.slow
@settings(max_examples=300, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=fuzz_cases(_SCHEMA))
def test_fuzzed_plans_agree_across_engines_deep(data: FuzzCase):
    """Nightly profile: many more examples, randomized exploration."""
    _shared_harness().check_case(data)


@pytest.mark.slow
def test_seed_sweep_nightly(harness):
    """Nightly profile: 500 sequential CLI seeds stay green."""
    for seed in range(500):
        harness.check_case(case_from_seed(seed, harness.schema))


class TestSeedPath:
    """The CLI's seed-driven generator is reproducible and serialisable."""

    def test_same_seed_same_plan(self, harness):
        a = case_from_seed(42, harness.schema)
        b = case_from_seed(42, harness.schema)
        assert explain(a.plan) == explain(b.plan)
        assert (a.shape, a.table, a.key) == (b.shape, b.table, b.key)

    def test_case_json_round_trip(self, harness):
        for seed in range(30):
            case = case_from_seed(seed, harness.schema)
            rebuilt = FuzzCase.from_json(json.loads(json.dumps(case.to_json())))
            assert explain(rebuilt.plan) == explain(case.plan)
            assert rebuilt.shape == case.shape
            assert rebuilt.has_value_predicate == case.has_value_predicate

    def test_expression_round_trip_evaluates_identically(self, harness):
        batch = harness.tables["patients"]
        predicate = ((col("age") < 50) & ~col("gender").isin([0])) | \
            (col("disease_id") == 3)
        rebuilt = expression_from_json(expression_to_json(predicate))
        np.testing.assert_array_equal(
            predicate.evaluate(batch), rebuilt.evaluate(batch)
        )

    def test_plan_round_trip_rejects_unknown_tags(self):
        with pytest.raises(ValueError):
            plan_from_json({"t": "mystery"})

    def test_sample_plans_serialise(self):
        plan = Pivot(
            Project(
                Filter(Join(Scan("patients"), Scan("microarray"),
                            "patient_id", "patient_id"),
                       col("age") >= 40),
                ("patient_id", "gene_id", "expression_value"),
            ),
            "patient_id", "gene_id", "expression_value",
        )
        assert explain(plan_from_json(plan_to_json(plan))) == explain(plan)


class TestMutationPrelude:
    """Write preludes: delta-tier writes replayed identically on both sides."""

    def test_mutated_cases_agree_with_reference(self, harness):
        checked = 0
        kinds: set[str] = set()
        for seed in range(150):
            case = case_from_seed(seed, harness.schema)
            if not case.mutations:
                continue
            kinds.update(op.kind for op in case.mutations)
            outcome = harness.check_case(case)
            if not outcome.skipped_empty:
                # Mutated cases admit the two column-store lowerings only.
                assert outcome.engines_checked == ["colstore", "colstore-unopt"]
                checked += 1
            # Shuffle-byte predictions are skipped (gate ignores None).
            assert outcome.record.predicted_shuffle_bytes is None
        assert checked >= 10  # the grammar must actually exercise preludes
        assert kinds == {"append", "delete", "compact"}

    def test_mutated_case_json_round_trips(self, harness):
        seen = 0
        for seed in range(150):
            case = case_from_seed(seed, harness.schema)
            if not case.mutations:
                continue
            rebuilt = FuzzCase.from_json(json.loads(json.dumps(case.to_json())))
            assert [op.to_json() for op in rebuilt.mutations] == \
                   [op.to_json() for op in case.mutations]
            assert explain(rebuilt.plan) == explain(case.plan)
            seen += 1
        assert seen >= 10

    def test_artifacts_predating_mutations_still_load(self, harness):
        """Backwards compatibility: old failure artifacts have no key."""
        case = case_from_seed(0, harness.schema)
        data = json.loads(json.dumps(case.to_json()))
        data.pop("mutations")
        assert FuzzCase.from_json(data).mutations == ()

    def test_sample_shapes_never_carry_mutations(self, harness):
        """Sampling is position-dependent; compaction renumbers positions."""
        for seed in range(300):
            case = case_from_seed(seed, harness.schema)
            if case.shape == "sample":
                assert case.mutations == ()

    def test_lowered_steps_match_delta_store_semantics(self, harness):
        """The reference's replay equals the real delta tier's snapshot."""
        ops = (
            MutationOp("append", "patients", seed=11, count=4),
            MutationOp("delete", "patients", seed=12, count=3),
            MutationOp("compact", "patients", seed=0, count=0),
            MutationOp("append", "patients", seed=13, count=2),
            MutationOp("delete", "patients", seed=14, count=2),
        )
        steps = lower_mutations(ops, harness.tables, harness.schema)
        assert [kind for kind, _, _ in steps] == \
            ["append", "delete", "compact", "append", "delete"]
        store = ColumnStore()
        for name, columns in harness.tables.items():
            store.create_table(name, columns)
        for kind, table, payload in steps:
            if kind == "append":
                store.append(table, payload)
            elif kind == "delete":
                store.delete(table, payload)
            else:
                store.compact(table)
        expected = mutated_tables(harness.tables, steps)["patients"]
        arrays = store.snapshot("patients").logical_arrays()
        assert set(arrays) == set(expected)
        for name, values in expected.items():
            np.testing.assert_array_equal(arrays[name], values)


class TestCalibrationGate:
    """The q-error gate passes honest reports and trips skewed ones."""

    def _run_gate(self, report_path) -> subprocess.CompletedProcess:
        return subprocess.run(
            [sys.executable, str(REPO / "tools" / "check_cost_calibration.py"),
             "--report", str(report_path)],
            capture_output=True, text=True,
        )

    def test_gate_passes_on_real_predictions(self, harness, tmp_path):
        records = [harness.check_case(case_from_seed(seed, harness.schema)).record
                   for seed in range(60)]
        report = tmp_path / "report.json"
        write_report(report, records)
        result = self._run_gate(report)
        assert result.returncode == 0, result.stdout + result.stderr

    def test_gate_trips_when_selectivity_forced_to_one(self, harness, tmp_path):
        """The ISSUE's trip-wire: selectivity 1.0 must fail the gate."""
        records = [
            harness.check_case(case_from_seed(seed, harness.schema),
                               skew_selectivity=True).record
            for seed in range(60)
        ]
        report = tmp_path / "skewed.json"
        write_report(report, records)
        result = self._run_gate(report)
        assert result.returncode == 1, result.stdout + result.stderr
        assert "FAILED" in result.stdout

    def test_gate_refuses_tiny_samples(self, tmp_path):
        report = tmp_path / "tiny.json"
        write_report(report, [CalibrationRecord(seed=0, shape="meta",
                                                predicted_rows=1.0,
                                                observed_rows=1)])
        result = self._run_gate(report)
        assert result.returncode == 1

    def test_q_error_is_symmetric_and_smoothed(self):
        assert q_error(10, 10) == 1.0
        assert q_error(0, 0) == 1.0
        assert q_error(9, 99) == q_error(99, 9) == 10.0


class TestTolerances:
    """One shared tolerance table for the fuzzer and the query tests."""

    def test_structural_results_are_exact_everywhere(self):
        for engine in ("colstore", "postgres", "scidb", "hadoop", "vanilla-r"):
            for function in ("count", "min", "max"):
                assert aggregate_tolerance(engine, function) is EXACT

    def test_reassociating_reductions_are_ulp_on_every_engine(self):
        for engine in ("colstore", "postgres", "scidb", "hadoop", "vanilla-r"):
            for function in ("sum", "mean", "avg"):
                assert aggregate_tolerance(engine, function) is ULP

    def test_mahout_fields_are_ulp_on_hadoop_only(self):
        assert summary_tolerance("hadoop", "r_squared") is ULP
        assert summary_tolerance("hadoop", "n_selected_genes") is EXACT
        assert summary_tolerance("scidb", "r_squared") is EXACT

    def test_assert_values_match_exact_rejects_last_ulp(self):
        base = np.array([1.0, 2.0])
        off = base + np.array([0.0, np.finfo(np.float64).eps * 2])
        with pytest.raises(AssertionError):
            assert_values_match(off, base, EXACT)
        assert_values_match(off, base, ULP)  # within rel=1e-9

    def test_ulp_tolerance_still_rejects_real_divergence(self):
        with pytest.raises(AssertionError):
            assert_values_match(np.array([1.0]), np.array([1.001]), ULP)


class TestReferenceSampleSemantics:
    """The reference's Sample replicates the column store bit for bit."""

    def test_sample_plans_match_colstore_for_many_seeds(self, harness):
        checked = 0
        for seed in range(200):
            case = case_from_seed(seed, harness.schema)
            if case.shape != "sample":
                continue
            harness.check_case(case)
            checked += 1
        assert checked >= 10  # the grammar must actually exercise Sample


class TestApproxShapes:
    """Sketch-backed approx plans stay inside their promised error bounds."""

    def test_approx_plans_match_exact_reference_for_many_seeds(self, harness):
        checked = 0
        for seed in range(200):
            case = case_from_seed(seed, harness.schema)
            if case.shape != "approx":
                continue
            outcome = harness.check_case(case)
            if not outcome.skipped_empty:
                assert outcome.engines_checked == ["colstore", "colstore-unopt"]
                checked += 1
        assert checked >= 10  # the grammar must actually exercise approx

    def test_approx_plans_serialise(self, harness):
        for seed in range(200):
            case = case_from_seed(seed, harness.schema)
            if case.shape != "approx":
                continue
            data = plan_to_json(case.plan)
            assert plan_to_json(plan_from_json(data)) == data

    def test_sketch_tolerance_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            sketch_tolerance("approx_sum")  # sampled, not sketch-backed
