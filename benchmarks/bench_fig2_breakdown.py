"""Figure 2 (a)–(b): data-management vs analytics time for the regression query.

The paper breaks the linear-regression query's elapsed time into its data
management and analytics portions for every single-node system (Postgres
excluded, as in the paper, because its configurations report no breakdown —
here they do, so they are included as a bonus series).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_sizes, record
from repro.core.engines import SINGLE_NODE_ENGINES
from repro.core.results import breakdown_series


@pytest.mark.parametrize("size", bench_sizes())
@pytest.mark.parametrize("engine_name", SINGLE_NODE_ENGINES)
def test_fig2_cell(benchmark, engine_name, size, datasets, runner, engine_cache,
                   collected_results):
    dataset = datasets[size]
    engine = engine_cache(engine_name, dataset)

    def run_once():
        return runner.run("regression", engine, dataset)

    result = benchmark.pedantic(run_once, rounds=1, iterations=1)
    record(benchmark, result, collected_results)


def test_fig2_report(benchmark, collected_results, capsys):
    """Print the regression data-management / analytics split per system."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n=== Figure 2: regression query breakdown (seconds) ===")
        series = breakdown_series(collected_results, "regression", x_axis="dataset_size")
        for engine, phases in sorted(series.items()):
            dm = ", ".join(f"{x}={y:.3f}" for x, y in phases["data_management"])
            an = ", ".join(f"{x}={y:.3f}" for x, y in phases["analytics"])
            print(f"  {engine:22s} data management: {dm}")
            print(f"  {'':22s} analytics:       {an}")
