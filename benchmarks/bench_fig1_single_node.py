"""Figure 1 (a)–(e): single-node query time vs dataset size, all seven systems.

Regenerates the series behind the paper's Figure 1: for each of the five
GenBase queries, the elapsed time of every single-node configuration at each
dataset size.  Unsupported (engine, query) combinations are recorded as such
and plotted as missing series points; timeouts and memory failures are the
paper's "infinite" results.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_sizes, record
from repro.core import QUERY_NAMES
from repro.core.engines import SINGLE_NODE_ENGINES
from repro.core.results import figure_series


@pytest.mark.parametrize("size", bench_sizes())
@pytest.mark.parametrize("engine_name", SINGLE_NODE_ENGINES)
@pytest.mark.parametrize("query", QUERY_NAMES)
def test_fig1_cell(benchmark, query, engine_name, size, datasets, runner,
                   engine_cache, collected_results):
    dataset = datasets[size]
    engine = engine_cache(engine_name, dataset)

    def run_once():
        return runner.run(query, engine, dataset)

    result = benchmark.pedantic(run_once, rounds=1, iterations=1)
    record(benchmark, result, collected_results)


def test_fig1_report(benchmark, collected_results, capsys):
    """Print the per-query series exactly as Figure 1 plots them."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n=== Figure 1: single-node query performance (seconds) ===")
        for query in QUERY_NAMES:
            series = figure_series(collected_results, query, x_axis="dataset_size")
            if not series:
                continue
            print(f"\n-- {query} --")
            for engine, points in sorted(series.items()):
                rendered = ", ".join(
                    f"{x}={'n/a' if y is None else f'{y:.3f}'}" for x, y in points
                )
                print(f"  {engine:22s} {rendered}")
