"""Benchmark harness: one module per figure/table in the GenBase paper."""
