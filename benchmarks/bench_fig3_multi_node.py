"""Figure 3 (a)–(e): multi-node query time on the largest swept dataset, 1/2/4 nodes.

Regenerates the multi-node comparison: SciDB, Hadoop, column store + pbdR,
column store + UDFs and pbdR, each at 1, 2 and 4 (simulated) nodes.  Times
are the simulated parallel elapsed times (slowest node + network), so the
sub-linear scaling and the occasional 1→2-node regression appear for the
same structural reasons as in the paper.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_node_counts, multi_node_size, record
from repro.core import QUERY_NAMES
from repro.core.engines import MULTI_NODE_ENGINES
from repro.core.results import figure_series


@pytest.mark.parametrize("n_nodes", bench_node_counts())
@pytest.mark.parametrize("engine_name", MULTI_NODE_ENGINES)
@pytest.mark.parametrize("query", QUERY_NAMES)
def test_fig3_cell(benchmark, query, engine_name, n_nodes, datasets, runner,
                   engine_cache, collected_results):
    dataset = datasets[multi_node_size()]
    engine = engine_cache(engine_name, dataset, n_nodes=n_nodes)

    def run_once():
        return runner.run(query, engine, dataset)

    result = benchmark.pedantic(run_once, rounds=1, iterations=1)
    result.n_nodes = n_nodes
    record(benchmark, result, collected_results)


def test_fig3_report(benchmark, collected_results, capsys):
    """Print the per-query multi-node series exactly as Figure 3 plots them."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    with capsys.disabled():
        size = multi_node_size()
        print(f"\n=== Figure 3: multi-node query performance, {size} dataset (seconds) ===")
        for query in QUERY_NAMES:
            series = figure_series(collected_results, query, x_axis="n_nodes")
            if not series:
                continue
            print(f"\n-- {query} --")
            for engine, points in sorted(series.items()):
                rendered = ", ".join(
                    f"{x} nodes={'n/a' if y is None else f'{y:.3f}'}" for x, y in points
                )
                print(f"  {engine:26s} {rendered}")
