"""Figure 5 (a)–(d): SciDB vs SciDB + coprocessor, per dataset size.

Regenerates the single-node accelerator comparison for the four queries the
paper offloads (biclustering, SVD, covariance, statistics; regression is
excluded because its automatic offload was unsupported).  The coprocessor
times are modelled (transfer + Amdahl-scaled compute) as documented in
DESIGN.md; the expected shape is that speedups appear only once the dataset
is large enough for analytics to dominate the transfer overhead.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_sizes, record
from repro.core.results import figure_series

FIG5_QUERIES = ("biclustering", "svd", "covariance", "statistics")
FIG5_ENGINES = ("scidb", "scidb-phi")


@pytest.mark.parametrize("size", bench_sizes())
@pytest.mark.parametrize("engine_name", FIG5_ENGINES)
@pytest.mark.parametrize("query", FIG5_QUERIES)
def test_fig5_cell(benchmark, query, engine_name, size, datasets, runner, engine_cache,
                   collected_results):
    dataset = datasets[size]
    engine = engine_cache(engine_name, dataset)

    def run_once():
        return runner.run(query, engine, dataset)

    result = benchmark.pedantic(run_once, rounds=1, iterations=1)
    record(benchmark, result, collected_results)


def test_fig5_report(benchmark, collected_results, capsys):
    """Print the SciDB vs SciDB+coprocessor series per query."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n=== Figure 5: SciDB vs SciDB + coprocessor (seconds) ===")
        for query in FIG5_QUERIES:
            series = figure_series(collected_results, query, x_axis="dataset_size")
            if not series:
                continue
            print(f"\n-- {query} --")
            for engine, points in sorted(series.items()):
                rendered = ", ".join(
                    f"{x}={'n/a' if y is None else f'{y:.3f}'}" for x, y in points
                )
                print(f"  {engine:12s} {rendered}")
