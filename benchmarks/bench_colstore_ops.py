"""Microbenchmark: compressed execution vs the decode-everything baseline.

Sweeps the column-store hot operations — filter scans, membership tests,
the equi-join, group-aggregates, pivot, table load — plus the simulated
cluster's shared-plan path (partition pruning, simulated node scaling and
the concurrent fragment dispatch) over the four encodings at a chosen
size, timing each op twice:

* **compressed** — the current fast paths (predicate pushdown onto distinct
  values, ``searchsorted`` sort-merge join, stats-driven encoding choice),
* **baseline** — the seed implementation each fast path replaced (full
  decode before every predicate, an interpreted Python hash join, encoding
  all four candidates per column), kept here verbatim so every future run
  measures against the same yardstick.

The run appends nothing and prints nothing fancy; it writes one JSON perf
record (default ``BENCH_colstore.json`` at the repo root) so later PRs have
a trajectory to regress against:

    PYTHONPATH=src python benchmarks/bench_colstore_ops.py --size tiny

This file is a script, not a pytest module — the CI smoke-runs it on the
``tiny`` size to keep the harness from rotting.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.colstore.column import ColumnVector
from repro.colstore.compression import (
    DeltaEncoding,
    DictionaryEncoding,
    PlainEncoding,
    RunLengthEncoding,
    best_encoding,
)
from repro.cluster import (
    Cluster,
    PartitionedTable,
    PartitionStats,
    reduce_partial_sums,
    run_shared_plan,
)
from repro.colstore.catalog import ColumnStore
from repro.colstore.planner import run_plan
from repro.colstore.query import ColumnQuery, merge_join_positions
from repro.colstore.table import ColumnTable
from repro.plan import Filter, Scan, approx_sum, col

SIZES = {"tiny": 10_000, "small": 100_000, "medium": 1_000_000}

DEFAULT_OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_colstore.json"


# --------------------------------------------------------------------------- #
# Seed baselines (what the compressed fast paths replaced)
# --------------------------------------------------------------------------- #

def baseline_filter(encoding, predicate) -> np.ndarray:
    """Seed filter: decode the whole column, then evaluate the predicate."""
    return np.asarray(predicate(encoding.decode()), dtype=bool)


def baseline_isin(encoding, lookup: np.ndarray) -> np.ndarray:
    """Seed membership test: decode, then ``np.isin`` over every row."""
    return np.isin(encoding.decode(), lookup)


def baseline_hash_join_positions(
    left_keys: np.ndarray, right_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """The seed's interpreted dict-of-lists hash join (verbatim)."""
    build_left = len(left_keys) <= len(right_keys)
    build_values = left_keys if build_left else right_keys
    probe_values = right_keys if build_left else left_keys

    index: dict[object, list[int]] = {}
    for position, key in enumerate(build_values.tolist()):
        index.setdefault(key, []).append(position)

    build_positions: list[int] = []
    probe_positions: list[int] = []
    for position, key in enumerate(probe_values.tolist()):
        matches = index.get(key)
        if not matches:
            continue
        for match in matches:
            build_positions.append(match)
            probe_positions.append(position)

    if build_left:
        return (
            np.asarray(build_positions, dtype=np.int64),
            np.asarray(probe_positions, dtype=np.int64),
        )
    return (
        np.asarray(probe_positions, dtype=np.int64),
        np.asarray(build_positions, dtype=np.int64),
    )


def baseline_group_aggregate(encoding, values: np.ndarray, function: str = "mean"):
    """Seed GROUP BY: decode the group column, ``np.unique`` + bincount (verbatim)."""
    groups = encoding.decode()
    values = values.astype(np.float64)
    keys, inverse = np.unique(groups, return_inverse=True)
    if function == "count":
        return keys, np.bincount(inverse, minlength=len(keys)).astype(np.float64)
    if function == "sum":
        return keys, np.bincount(inverse, weights=values, minlength=len(keys))
    if function == "mean":
        totals = np.bincount(inverse, weights=values, minlength=len(keys))
        counts = np.bincount(inverse, minlength=len(keys))
        return keys, totals / np.maximum(counts, 1)
    if function in ("min", "max"):
        result = np.full(len(keys), np.inf if function == "min" else -np.inf)
        reducer = np.minimum if function == "min" else np.maximum
        reducer.at(result, inverse, values)
        return keys, result
    raise ValueError(f"unsupported aggregate function {function!r}")


def baseline_pivot(table: ColumnTable, row_key: str, column_key: str, value: str):
    """Seed pivot: gather all three columns, two ``np.unique`` calls, scatter."""
    selection = np.arange(table.row_count, dtype=np.int64)
    rows = table.column(row_key).take(selection)
    cols = table.column(column_key).take(selection)
    values = table.column(value).take(selection).astype(np.float64)
    row_labels, row_positions = np.unique(rows, return_inverse=True)
    column_labels, column_positions = np.unique(cols, return_inverse=True)
    matrix = np.zeros((len(row_labels), len(column_labels)), dtype=np.float64)
    matrix[row_positions, column_positions] = values
    return matrix, row_labels, column_labels


def baseline_join_then_pivot(genes_table: ColumnTable, micro_table: ColumnTable,
                             threshold: int):
    """The PR 1–3 hand-stitched pipeline the fused plans replaced (verbatim).

    Filter the dimension table, materialise the join output as a new
    *compressed* column table carrying every mapped column (the old
    ``ColumnQuery.join`` semantics), then re-plan the pivot over it.  The
    fused path skips the re-encode, gathers only the three pivot columns
    through the join, and pushes the filter below it at the plan layer.
    """
    genes_query = ColumnQuery(genes_table).where(col("function") < threshold)
    micro_query = ColumnQuery(micro_table)
    left_keys = genes_query.column("gene_id")
    right_keys = micro_query.column("gene_id")
    left_positions, right_positions = merge_join_positions(left_keys, right_keys)
    left_rows = genes_query.selection[left_positions]
    right_rows = micro_query.selection[right_positions]
    arrays: dict[str, np.ndarray] = {}
    for name in genes_table.column_names:
        arrays[name] = genes_table.column(name).take(left_rows)
    for name in micro_table.column_names:
        if name != "gene_id":
            arrays[name] = micro_table.column(name).take(right_rows)
    joined = ColumnTable.from_arrays("joined", arrays)  # compress=True: seed behaviour
    return ColumnQuery(joined).pivot("patient_id", "gene_id", "expression_value")


def baseline_filter_chain(table: ColumnTable, steps) -> np.ndarray:
    """The eager-chain baseline the lazy plan API replaced.

    Every predicate computes a *full-column* mask through the encoding
    (the pre-plan ``ColumnQuery.where`` semantics), in the order written —
    no selectivity reordering, no narrowed evaluation.
    """
    selection = None
    for column, predicate in steps:
        mask = table.column(column).filter_mask(predicate)
        if selection is None:
            selection = np.flatnonzero(mask).astype(np.int64)
        else:
            selection = selection[mask[selection]]
    return selection


def baseline_best_encoding(values: np.ndarray):
    """The seed encoding picker: fully encode all candidates, keep smallest."""
    values = np.asarray(values)
    candidates = [PlainEncoding()]
    if values.size:
        if np.issubdtype(values.dtype, np.integer) or np.issubdtype(values.dtype, np.bool_):
            candidates.extend([RunLengthEncoding(), DictionaryEncoding(), DeltaEncoding()])
        else:
            candidates.append(RunLengthEncoding())
            if len(np.unique(values[: min(len(values), 10_000)])) <= 4096:
                candidates.append(DictionaryEncoding())
    best = best_size = None
    for encoding in candidates:
        encoding.encode(values)
        size = encoding.encoded_bytes()
        if best is None or size < best_size:
            best, best_size = encoding, size
    return best


# --------------------------------------------------------------------------- #
# Cluster workloads (the distributed shared-plan bridge)
# --------------------------------------------------------------------------- #

def cluster_workload(n: int, n_partitions: int, n_genes: int, seed: int,
                     partition_column: str):
    """A patients-shaped table row-partitioned across ``n_partitions`` nodes.

    ``partition_column="patient_id"`` gives contiguous id ranges per node
    (the statistics/covariance co-partitioned layout, where a narrow id
    sample prunes most partitions); ``"disease_id"`` gives shuffled
    low-cardinality values everywhere (no partition can be pruned — the
    scaling workload).  Each node also holds its block of a dense
    ``rows × n_genes`` expression matrix for the fragment payload.
    """
    rng = np.random.default_rng(seed)
    bounds = np.linspace(0, n, n_partitions + 1).astype(np.int64)
    partitions, blocks = [], []
    for low, high in zip(bounds[:-1], bounds[1:], strict=True):
        rows = int(high - low)
        if partition_column == "patient_id":
            partitions.append({"patient_id": np.arange(low, high, dtype=np.int64)})
        else:
            partitions.append({"disease_id": rng.integers(0, 50, rows).astype(np.int64)})
        blocks.append(rng.random((rows, n_genes)))
    return PartitionedTable.from_partitions("patients", partitions), blocks


def make_partial_sums(blocks, n_genes: int):
    """The statistics-query fragment: per-node ``(Σ rows, count)`` partials."""
    def partial(node_id: int, local_rows: np.ndarray):
        rows = blocks[node_id][local_rows]
        if rows.size == 0:
            return (np.zeros(n_genes), 0)
        return (rows.sum(axis=0), rows.shape[0])
    return partial


def simulated_plan_seconds(plan, table, blocks, n_genes: int, n_nodes: int,
                           rounds: int) -> float:
    """Best-of simulated parallel elapsed (max per-node CPU + network).

    Per-node compute is thread-CPU time on the threaded executor, so the
    ratio between node counts is contention-free and machine-independent —
    more nodes shrink the max-per-node term whether or not the host has
    cores to overlap them on.
    """
    cluster = Cluster(n_nodes)
    partial = make_partial_sums(blocks, n_genes)
    best = float("inf")
    for _ in range(rounds):
        cluster.reset_clock()
        run_shared_plan(plan, table, cluster, on_fragment=partial)
        best = min(best, cluster.simulated_elapsed_seconds)
    return best


# --------------------------------------------------------------------------- #
# Workload columns, one per encoding
# --------------------------------------------------------------------------- #

def workload_columns(n: int, seed: int = 7) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    return {
        "rle": np.sort(rng.integers(0, 50, n)),          # sorted low-cardinality
        "dictionary": rng.integers(0, 1_000, n),          # shuffled moderate card.
        "delta": np.cumsum(rng.integers(1, 20, n)),       # monotone ids/positions
        "plain": rng.random(n),                           # high-entropy floats
    }


def _encode_as(name: str, values: np.ndarray):
    encoding = {
        "rle": RunLengthEncoding,
        "dictionary": DictionaryEncoding,
        "delta": DeltaEncoding,
        "plain": PlainEncoding,
    }[name]()
    encoding.encode(values)
    return encoding


def _best_of(callable_, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _entry(op: str, encoding: str, n: int, compressed_s: float,
           baseline_s: float | None, gated: bool = False) -> dict:
    entry = {
        "op": op,
        "encoding": encoding,
        "n": n,
        "compressed_s": round(compressed_s, 6),
    }
    if baseline_s is not None:
        entry["baseline_s"] = round(baseline_s, 6)
        entry["speedup"] = round(baseline_s / compressed_s, 2) if compressed_s else None
    if gated:
        # Force the regression gate on regardless of the speedup magnitude:
        # for ops whose *existence* is the point (the fused join → pivot
        # plan must keep beating materialise-then-plan), not just their ratio.
        entry["gated"] = True
    return entry


# --------------------------------------------------------------------------- #
# The sweep
# --------------------------------------------------------------------------- #

def run_sweep(size: str, rounds: int = 3, seed: int = 7) -> dict:
    n = SIZES[size]
    columns = workload_columns(n, seed=seed)
    results: list[dict] = []

    # Filter scans: predicate pushdown vs decode-then-compare.
    thresholds = {"rle": 25, "dictionary": 500, "delta": columns["delta"][n // 2], "plain": 0.5}
    for name, values in columns.items():
        encoding = _encode_as(name, values)
        threshold = thresholds[name]
        predicate = lambda v, t=threshold: v < t
        compressed = _best_of(lambda: encoding.filter_mask(predicate), rounds)
        baseline = _best_of(lambda: baseline_filter(encoding, predicate), rounds)
        np.testing.assert_array_equal(
            encoding.filter_mask(predicate), baseline_filter(encoding, predicate)
        )
        results.append(_entry("filter", name, n, compressed, baseline))

    # Membership tests (where_in pushdown).
    lookups = {
        "rle": np.arange(0, 50, 5),
        "dictionary": np.arange(0, 1_000, 7),
        "delta": columns["delta"][:: max(1, n // 100)],
        "plain": columns["plain"][:: max(1, n // 100)],
    }
    for name, values in columns.items():
        encoding = _encode_as(name, values)
        lookup = lookups[name]
        compressed = _best_of(lambda: encoding.isin(lookup), rounds)
        baseline = _best_of(lambda: baseline_isin(encoding, lookup), rounds)
        np.testing.assert_array_equal(encoding.isin(lookup), baseline_isin(encoding, lookup))
        results.append(_entry("isin", name, n, compressed, baseline))

    # Equi-join: n-row build side, 4n-row probe side (GenBase's genes ⋈ microarray
    # shape).  Baseline is the seed's interpreted hash join.
    rng = np.random.default_rng(seed + 1)
    build_keys = rng.permutation(n).astype(np.int64)
    probe_keys = rng.integers(0, n, 4 * n).astype(np.int64)
    compressed = _best_of(lambda: merge_join_positions(build_keys, probe_keys), rounds)
    baseline = _best_of(
        lambda: baseline_hash_join_positions(build_keys, probe_keys), max(1, rounds - 1)
    )
    fast_left, fast_right = merge_join_positions(build_keys, probe_keys)
    slow_left, slow_right = baseline_hash_join_positions(build_keys, probe_keys)
    np.testing.assert_array_equal(build_keys[fast_left], build_keys[slow_left])
    np.testing.assert_array_equal(fast_right, slow_right)
    results.append(_entry("join", "int64-keys", n, compressed, baseline))

    # Group-aggregates: codes/runs consumed directly vs decode + np.unique.
    aggregate_values = rng.random(n)
    for name, values in columns.items():
        encoding = _encode_as(name, values)
        compressed = _best_of(
            lambda: encoding.group_reduce(aggregate_values, "mean"), rounds
        )
        baseline = _best_of(
            lambda: baseline_group_aggregate(encoding, aggregate_values, "mean"), rounds
        )
        fast_keys, fast_aggregates = encoding.group_reduce(aggregate_values, "mean")
        slow_keys, slow_aggregates = baseline_group_aggregate(
            encoding, aggregate_values, "mean"
        )
        np.testing.assert_array_equal(fast_keys, slow_keys)
        # RLE folds runs into partial sums, so float means may differ in the
        # last ulp from the row-order baseline accumulation.
        np.testing.assert_allclose(fast_aggregates, slow_aggregates, rtol=1e-12)
        results.append(_entry("aggregate", name, n, compressed, baseline))

    # Pivot: dictionary codes / run structure on both axes vs two np.unique.
    n_patients = max(1, int(np.sqrt(n)))
    n_genes = max(1, n // n_patients)
    pivot_table = ColumnTable.from_arrays(
        "micro",
        {
            "patient_id": np.repeat(np.arange(n_patients), n_genes),
            "gene_id": np.tile(np.arange(n_genes), n_patients),
            "expression_value": rng.random(n_patients * n_genes),
        },
    )
    query = ColumnQuery(pivot_table)
    compressed = _best_of(
        lambda: query.pivot("patient_id", "gene_id", "expression_value"), rounds
    )
    baseline = _best_of(
        lambda: baseline_pivot(pivot_table, "patient_id", "gene_id", "expression_value"),
        rounds,
    )
    fast_matrix, fast_rows, fast_cols = query.pivot(
        "patient_id", "gene_id", "expression_value"
    )
    slow_matrix, slow_rows, slow_cols = baseline_pivot(
        pivot_table, "patient_id", "gene_id", "expression_value"
    )
    np.testing.assert_array_equal(fast_matrix, slow_matrix)
    np.testing.assert_array_equal(fast_rows, slow_rows)
    np.testing.assert_array_equal(fast_cols, slow_cols)
    results.append(_entry("pivot", "mixed", n_patients * n_genes, compressed, baseline))

    # Filter chain: a 3-predicate conjunction through the lazy plan API
    # (conjunction splitting + selectivity-ordered pushdown: the equality
    # runs first over the full column, the two unselective range predicates
    # then evaluate on the narrowed selection only) vs the eager chain that
    # computes three full-column masks in the order written.
    chain_rng = np.random.default_rng(seed + 2)
    chain_table = ColumnTable(
        "chain",
        [
            ColumnVector("category", chain_rng.integers(0, 250, n), encoding="dictionary"),
            ColumnVector("status", np.sort(chain_rng.integers(0, 50, n)), encoding="rle"),
            ColumnVector("bucket", chain_rng.integers(0, 200, n), encoding="dictionary"),
        ],
    )
    chain_expressions = [  # written worst-first: two ~90% filters, then the needle
        col("status") < 45,
        col("bucket") < 180,
        col("category") == 7,
    ]
    chain_steps = [
        ("status", lambda v: v < 45),
        ("bucket", lambda v: v < 180),
        ("category", lambda v: v == 7),
    ]

    def plan_filter_chain():
        query = ColumnQuery(chain_table)
        for expression in chain_expressions:
            query = query.where(expression)
        return query.selection

    compressed = _best_of(plan_filter_chain, rounds)
    baseline = _best_of(lambda: baseline_filter_chain(chain_table, chain_steps), rounds)
    np.testing.assert_array_equal(
        plan_filter_chain(), baseline_filter_chain(chain_table, chain_steps)
    )
    results.append(_entry("filter_chain", "dictionary+rle", n, compressed, baseline))

    # Fused join → pivot: one logical plan (filter pushed below the join,
    # projections pruned through it, no re-encode of the join output) vs
    # the materialise-then-plan pipeline the engines used through PR 3.
    join_rng = np.random.default_rng(seed + 3)
    jp_patients = max(1, int(np.sqrt(n)) // 2)
    jp_genes = max(1, n // jp_patients)
    genes_table = ColumnTable.from_arrays(
        "genes",
        {
            "gene_id": np.arange(jp_genes, dtype=np.int64),
            "target": join_rng.integers(0, 2, jp_genes),
            "position": join_rng.integers(0, 10_000, jp_genes),
            "length": join_rng.integers(100, 5_000, jp_genes),
            "function": join_rng.integers(0, 1_000, jp_genes),
        },
    )
    micro_table = ColumnTable.from_arrays(
        "microarray",
        {
            "gene_id": np.tile(np.arange(jp_genes, dtype=np.int64), jp_patients),
            "patient_id": np.repeat(np.arange(jp_patients, dtype=np.int64), jp_genes),
            "expression_value": join_rng.random(jp_patients * jp_genes),
        },
    )
    function_threshold = 250  # keeps ~25% of genes, the GenBase Q1 shape

    def fused_join_pivot():
        return (
            ColumnQuery(genes_table)
            .where(col("function") < function_threshold)
            .join(ColumnQuery(micro_table), "gene_id", "gene_id")
            .pivot("patient_id", "gene_id", "expression_value")
        )

    compressed = _best_of(fused_join_pivot, rounds)
    baseline = _best_of(
        lambda: baseline_join_then_pivot(genes_table, micro_table, function_threshold),
        rounds,
    )
    fast_matrix, fast_rows, fast_cols = fused_join_pivot()
    slow_matrix, slow_rows, slow_cols = baseline_join_then_pivot(
        genes_table, micro_table, function_threshold
    )
    np.testing.assert_array_equal(fast_matrix, slow_matrix)
    np.testing.assert_array_equal(fast_rows, slow_rows)
    np.testing.assert_array_equal(fast_cols, slow_cols)
    results.append(
        _entry("join_pivot", "fused-plan", jp_patients * jp_genes, compressed,
               baseline, gated=True)
    )

    # Load: stats-driven encoding choice vs encode-all-candidates.
    for name, values in columns.items():
        compressed = _best_of(lambda v=values: best_encoding(v), rounds)
        baseline = _best_of(lambda v=values: baseline_best_encoding(v), rounds)
        assert best_encoding(values).name == baseline_best_encoding(values).name
        results.append(_entry("load", name, n, compressed, baseline))

    # Cluster partition pruning: the statistics-query shape (a sparse
    # patient-id sample over id-range-partitioned nodes).  The pruned path
    # eliminates non-intersecting partitions on the driver from their
    # synopses; the baseline is the seed behaviour — evaluate the predicate
    # on every node.  Both sides dispatch sequentially so the ratio
    # isolates pruning (the executor's real-clock effect is measured by
    # the ``cluster_dispatch`` entry below, and is host-core-dependent).
    n_fragments = 16
    n_genes = 32
    cluster_rows = 4 * n   # partitions big enough that the mask evaluation
    #                        the pruning skips dwarfs the dispatch overhead
    prune_table, prune_blocks = cluster_workload(
        cluster_rows, n_fragments, n_genes, seed + 4, "patient_id"
    )
    sample_low = (2 * cluster_rows) // n_fragments
    sample_high = (4 * cluster_rows) // n_fragments  # spans 2 of the 16 partitions
    sample = np.arange(sample_low, sample_high, 100, dtype=np.int64)
    prune_plan = Filter(Scan("patients"), col("patient_id").isin(sample))
    prune_partial = make_partial_sums(prune_blocks, n_genes)
    prune_stats = PartitionStats()
    pruned_cluster = Cluster(n_fragments, executor="sequential")
    seed_cluster = Cluster(n_fragments, executor="sequential")

    def pruned_statistics():
        return reduce_partial_sums(run_shared_plan(
            prune_plan, prune_table, pruned_cluster,
            stats=prune_stats, on_fragment=prune_partial,
        ))

    def seed_statistics():
        return reduce_partial_sums(run_shared_plan(
            prune_plan, prune_table, seed_cluster,
            on_fragment=prune_partial, optimized=False,
        ))

    compressed = _best_of(pruned_statistics, rounds)
    baseline = _best_of(seed_statistics, rounds)
    fast_totals, fast_count = pruned_statistics()
    slow_totals, slow_count = seed_statistics()
    np.testing.assert_allclose(fast_totals, slow_totals, rtol=1e-12)
    assert fast_count == slow_count
    assert prune_stats.partitions_skipped > 0, "synopsis pruning never fired"
    results.append(
        _entry("cluster_prune", "fragments-16", cluster_rows, compressed, baseline,
               gated=True)
    )

    # Simulated node scaling: the same covariance-shaped scan-everywhere
    # workload (shuffled disease ids — nothing prunable) at 1 node vs 4.
    # Both timings are the *simulated* parallel elapsed (max per-node CPU +
    # network), so the ratio reflects the time model, not host core count:
    # near-linear, because this phase moves nothing over the network.
    scale_plan = Filter(Scan("patients"),
                        col("disease_id").isin(np.arange(0, 25, dtype=np.int64)))
    one_table, one_blocks = cluster_workload(
        cluster_rows, 1, n_genes, seed + 5, "disease_id"
    )
    four_table, four_blocks = cluster_workload(
        cluster_rows, 4, n_genes, seed + 5, "disease_id"
    )
    compressed = simulated_plan_seconds(
        scale_plan, four_table, four_blocks, n_genes, 4, rounds
    )
    baseline = simulated_plan_seconds(
        scale_plan, one_table, one_blocks, n_genes, 1, rounds
    )
    results.append(
        _entry("cluster_scale", "sim-1-vs-4-nodes", cluster_rows, compressed, baseline,
               gated=True)
    )

    # Concurrent dispatch, real clock: the same four fragments through the
    # threaded executor vs the sequential fallback, compared on the actual
    # wall time the driver waited (not the simulated model).  Not gated:
    # the ratio is whatever the host's core count makes it — ~1.0x on a
    # single-core runner, approaching the fragment count on idle multicore.
    dispatch_work = [
        (lambda node, block=block: (block * block).sum(axis=0)) for block in four_blocks
    ]
    threaded_cluster = Cluster(4)
    sequential_cluster = Cluster(4, executor="sequential")

    def best_wall(cluster: Cluster) -> float:
        return min(
            cluster.run_on_nodes(dispatch_work).wall_seconds for _ in range(rounds)
        )

    compressed = best_wall(threaded_cluster)
    baseline = best_wall(sequential_cluster)
    threaded_outputs = threaded_cluster.run_on_nodes(dispatch_work).outputs
    sequential_outputs = sequential_cluster.run_on_nodes(dispatch_work).outputs
    for fast, slow in zip(threaded_outputs, sequential_outputs, strict=True):
        np.testing.assert_array_equal(fast, slow)
    results.append(
        _entry("cluster_dispatch", "threads-wall", cluster_rows, compressed, baseline)
    )

    # Approximate aggregate: SUM over a 1% uniform synopsis with CLT bounds
    # vs the exact answer through the same plan API (an ApproxAggregate
    # with no sampling opt-in runs the full column).  The synopsis is
    # built once before timing — its catalog-cached selection is the whole
    # point of the reuse-across-queries lifecycle — so the timed fast path
    # is gather-over-sample plus closed-form interval arithmetic.  Gated:
    # the sampled path must stay an order of magnitude ahead at real
    # sizes, and its interval must actually cover the exact answer.
    approx_rng = np.random.default_rng(seed + 6)
    approx_store = ColumnStore()
    approx_store.create_table("measurements", {
        "measurement_id": np.arange(n, dtype=np.int64),
        "reading": approx_rng.lognormal(0.0, 0.5, n),
    })
    # A fixed sampling seed whose interval covers at every sweep size —
    # any one draw has a 5% chance of an honest miss, which would make
    # the bench flaky; the coverage *rate* is what tests/test_approx.py
    # verifies over hundreds of seeds.
    sampling_seed = 0
    approx_plan = approx_sum(Scan("measurements"), "reading",
                             fraction=0.01, seed=sampling_seed)
    exact_plan = approx_sum(Scan("measurements"), "reading")
    approx_store.synopses.uniform("measurements", 0.01, sampling_seed)

    def sampled_aggregate():
        return run_plan(approx_plan, approx_store)

    def exact_aggregate():
        return run_plan(exact_plan, approx_store)

    compressed = _best_of(sampled_aggregate, rounds)
    baseline = _best_of(exact_aggregate, rounds)
    sampled = sampled_aggregate()
    exact = exact_aggregate().estimate
    assert sampled.covers(exact), (
        f"sampled 95% interval [{sampled.ci_low}, {sampled.ci_high}] "
        f"misses the exact sum {exact} — measured error outside the "
        "promised bound"
    )
    results.append(
        _entry("approx_aggregate", "uniform-1pct", n, compressed, baseline,
               gated=True)
    )

    # Delta-tier scan: the INGEST.md worked-example query (sum(val) group
    # by grp) over a snapshot carrying a 5% uncompressed tail, answered
    # through the per-operator sealed/tail merge — the sealed part keeps
    # its dictionary grouped-reduction fast path, the tail reduces plain,
    # and ``merge_group_parts`` scatter-adds the partials — vs the
    # always-decode baseline a writable tier without MergedColumn would
    # force: materialise every column (sealed decode + tail concat) and
    # evaluate plain.  Gated: losing the merge means every scan of a
    # written table decodes — exactly the regression the delta tier
    # exists to avoid.  The same query over an unwritten store is timed
    # alongside and recorded as ``sealed_only_s``: a 5% tail must cost at
    # most 1.2x the pristine scan, plus a fixed noise floor covering the
    # merge's constant per-query costs (tail unique + partial merge),
    # which are microsecond-scale and would otherwise dominate the ratio
    # at the tiny CI-smoke size.
    delta_rng = np.random.default_rng(seed + 7)
    tail_n = max(1, n // 20)
    sealed_arrays = {
        "grp": delta_rng.integers(0, 50, n).astype(np.int64),
        "val": delta_rng.random(n),
    }
    tail_arrays = {
        "grp": delta_rng.integers(0, 50, tail_n).astype(np.int64),
        "val": delta_rng.random(tail_n),
    }
    sealed_store = ColumnStore()
    sealed_store.create_table("written", sealed_arrays)
    written_store = ColumnStore()
    written_store.create_table("written", sealed_arrays)
    written_store.append("written", tail_arrays)

    def merged_delta_scan():
        return written_store.query("written").group_aggregate("grp", "val", "sum")

    def decoded_delta_scan():
        arrays = written_store.snapshot("written").logical_arrays()
        values = arrays["val"].astype(np.float64)
        keys, inverse = np.unique(arrays["grp"], return_inverse=True)
        return keys, np.bincount(inverse, weights=values, minlength=len(keys))

    def sealed_only_scan():
        return sealed_store.query("written").group_aggregate("grp", "val", "sum")

    # Interleaved best-of: the three paths are timed round-robin rather
    # than phase by phase, so clock-frequency drift across the sweep can't
    # systematically favour whichever path happens to be timed last — the
    # 1.2x bound below compares the merged and sealed timings directly.
    merged_delta_scan(), decoded_delta_scan(), sealed_only_scan()  # warm caches
    compressed = baseline = sealed_only = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        merged_delta_scan()
        compressed = min(compressed, time.perf_counter() - start)
        start = time.perf_counter()
        decoded_delta_scan()
        baseline = min(baseline, time.perf_counter() - start)
        start = time.perf_counter()
        sealed_only_scan()
        sealed_only = min(sealed_only, time.perf_counter() - start)
    fast_keys, fast_sums = merged_delta_scan()
    slow_keys, slow_sums = decoded_delta_scan()
    np.testing.assert_array_equal(fast_keys, slow_keys)
    # The merged path adds sealed and tail partials after the sealed fast
    # path folds its codes; the decoded baseline accumulates in row order
    # — the same last-ulp caveat as the aggregate entries above.
    np.testing.assert_allclose(fast_sums, slow_sums, rtol=1e-12)
    assert compressed <= 1.2 * sealed_only + 200e-6, (
        f"merged scan with a 5% tail took {compressed*1e6:.0f}us vs "
        f"{sealed_only*1e6:.0f}us sealed-only — over the 1.2x "
        "merge-overhead bound"
    )
    delta_entry = _entry("delta_scan", "dictionary+tail", n + tail_n,
                         compressed, baseline, gated=True)
    delta_entry["sealed_only_s"] = round(sealed_only, 6)
    results.append(delta_entry)

    return {
        "benchmark": "colstore_ops",
        "size": size,
        "n_rows": n,
        "rounds": rounds,
        "results": results,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", choices=sorted(SIZES), default="small")
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)
    if args.rounds < 1:
        parser.error("--rounds must be at least 1")

    record = run_sweep(args.size, rounds=args.rounds)
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(record, indent=2) + "\n")

    print(f"== colstore ops @ {args.size} ({record['n_rows']} rows) ==")
    for entry in record["results"]:
        speedup = entry.get("speedup")
        rendered = f"  {entry['op']:6s} {entry['encoding']:12s} {entry['compressed_s']*1e3:9.3f} ms"
        if speedup is not None:
            rendered += f"   baseline {entry['baseline_s']*1e3:9.3f} ms   speedup {speedup:6.1f}x"
        print(rendered)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
