"""Scaling-shape checks and design-choice ablations (paper Sections 4.3 and 6).

This module regenerates the paper's *qualitative* claims that are not a
single figure:

* the fraction of time spent in analytics grows with dataset size
  (Section 4.3), measured on the SciDB configuration;
* the copy/reformat cost of bolting external R onto a DBMS explains much of
  the gap between the "+ R" and "+ UDFs" column-store configurations
  (Section 6.2);
* algorithm choice matters (Section 6.3): the Lanczos truncated SVD vs the
  full LAPACK SVD, and the naive (interpreted) covariance vs the BLAS one.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import bench_sizes, record
from repro.core import ResultTable
from repro.linalg import blas, naive
from repro.linalg.covariance import covariance_matrix
from repro.linalg.lanczos import lanczos_svd


# --------------------------------------------------------------------------- #
# Analytics fraction grows with dataset size (SciDB, covariance query)
# --------------------------------------------------------------------------- #

@pytest.mark.parametrize("size", bench_sizes())
def test_analytics_fraction_by_size(benchmark, size, datasets, runner, engine_cache,
                                    collected_results):
    dataset = datasets[size]
    engine = engine_cache("scidb", dataset)

    def run_once():
        return runner.run("covariance", engine, dataset)

    result = benchmark.pedantic(run_once, rounds=1, iterations=1)
    record(benchmark, result, collected_results)


def test_analytics_fraction_report(benchmark, collected_results, capsys):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = ResultTable([r for r in collected_results if r.query == "covariance"])
    with capsys.disabled():
        print("\n=== Section 4.3: analytics fraction of the covariance query (SciDB) ===")
        for result in table:
            fraction = (
                result.analytics_seconds / result.total_seconds if result.total_seconds else 0.0
            )
            print(f"  {result.dataset_size:8s} analytics fraction = {fraction:.2f}")


# --------------------------------------------------------------------------- #
# Export/reformat cost: column store + external R vs column store + UDFs
# --------------------------------------------------------------------------- #

@pytest.mark.parametrize("engine_name", ("columnstore-r", "columnstore-udf"))
def test_export_cost_ablation(benchmark, engine_name, datasets, runner, engine_cache,
                              collected_results):
    dataset = datasets[bench_sizes()[-1]]
    engine = engine_cache(engine_name, dataset)

    def run_once():
        return runner.run("covariance", engine, dataset)

    result = benchmark.pedantic(run_once, rounds=1, iterations=1)
    record(benchmark, result, collected_results)


def test_export_cost_report(benchmark, collected_results, capsys):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    external = [r for r in collected_results if r.engine == "columnstore-r"]
    in_db = [r for r in collected_results if r.engine == "columnstore-udf"]
    if not external or not in_db:
        return
    with capsys.disabled():
        print("\n=== Section 6.2: copy/reformat cost of external analytics ===")
        print(f"  column store + external R : dm={external[0].data_management_seconds:.3f}s "
              f"(export bytes={int(external[0].notes.get('export_bytes', 0))})")
        print(f"  column store + in-DB UDFs : dm={in_db[0].data_management_seconds:.3f}s")


# --------------------------------------------------------------------------- #
# Algorithm ablations (Section 6.3)
# --------------------------------------------------------------------------- #

@pytest.fixture(scope="module")
def ablation_matrix(datasets):
    dataset = datasets[bench_sizes()[-1]]
    return dataset.expression_matrix


def test_ablation_lanczos_svd(benchmark, ablation_matrix):
    result = benchmark(lambda: lanczos_svd(ablation_matrix, k=10, seed=0))
    assert len(result.singular_values) == 10


def test_ablation_full_lapack_svd(benchmark, ablation_matrix):
    result = benchmark(lambda: blas.truncated_svd(ablation_matrix, k=10))
    assert len(result[1]) == 10


def test_ablation_blas_covariance(benchmark, ablation_matrix):
    cov = benchmark(lambda: covariance_matrix(ablation_matrix))
    assert cov.shape[0] == ablation_matrix.shape[1]


def test_ablation_naive_covariance(benchmark, ablation_matrix):
    # Keep the interpreted-tier ablation tractable: a sub-matrix is enough to
    # show the orders-of-magnitude gap per cell.
    sub = ablation_matrix[:40, :40]
    cov = benchmark.pedantic(lambda: naive.covariance_matrix(sub), rounds=1, iterations=1)
    np.testing.assert_allclose(cov, np.cov(sub, rowvar=False), atol=1e-8)


def test_ablation_householder_vs_lapack_regression(benchmark, ablation_matrix, datasets):
    dataset = datasets[bench_sizes()[-1]]
    features = ablation_matrix[:, :20]
    target = dataset.patients.drug_response
    from repro.linalg.qr import linear_regression

    fit = benchmark(lambda: linear_regression(features, target, method="householder"))
    reference = linear_regression(features, target, method="lapack")
    np.testing.assert_allclose(fit.coefficients, reference.coefficients, atol=1e-6)
