"""Figure 4 (a)–(b): multi-node regression breakdown (data management vs analytics).

Same configurations as Figure 3, regression query only, with the elapsed
time split into its data-management and analytics portions per node count.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_node_counts, multi_node_size, record
from repro.core.engines import MULTI_NODE_ENGINES
from repro.core.results import breakdown_series


@pytest.mark.parametrize("n_nodes", bench_node_counts())
@pytest.mark.parametrize("engine_name", MULTI_NODE_ENGINES)
def test_fig4_cell(benchmark, engine_name, n_nodes, datasets, runner, engine_cache,
                   collected_results):
    dataset = datasets[multi_node_size()]
    engine = engine_cache(engine_name, dataset, n_nodes=n_nodes)

    def run_once():
        return runner.run("regression", engine, dataset)

    result = benchmark.pedantic(run_once, rounds=1, iterations=1)
    result.n_nodes = n_nodes
    record(benchmark, result, collected_results)


def test_fig4_report(benchmark, collected_results, capsys):
    """Print the multi-node regression breakdown per system."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    with capsys.disabled():
        print(f"\n=== Figure 4: multi-node regression breakdown, {multi_node_size()} dataset ===")
        series = breakdown_series(collected_results, "regression", x_axis="n_nodes")
        for engine, phases in sorted(series.items()):
            dm = ", ".join(f"{x}n={y:.3f}" for x, y in phases["data_management"])
            an = ", ".join(f"{x}n={y:.3f}" for x, y in phases["analytics"])
            print(f"  {engine:26s} data management: {dm}")
            print(f"  {'':26s} analytics:       {an}")
