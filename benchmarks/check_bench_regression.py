"""Perf-regression gate: fail CI when the bench smoke run loses a fast path.

Compares a candidate run of ``bench_colstore_ops.py`` (the CI smoke run)
against the committed ``BENCH_colstore.json`` trajectory.  For every
``(op, encoding)`` entry whose *recorded* speedup is at least
``--min-reference`` — or that the bench marked ``"gated": true`` (ops whose
existence is the point, like the fused join → pivot plan beating
materialise-then-plan) — the candidate must retain at least ``--fraction``
of that recorded speedup (and never drop below 1.0x).  Other entries below
the reference threshold are reported but not gated — near-1.0 ratios on
microsecond timings are timer jitter, not fast paths, and would make the
gate flaky.

Several gated fast paths run in single-digit microseconds (a dictionary
range filter is one code comparison), where shared-runner noise can halve
the measured ratio without any real regression.  A gated entry therefore
fails only when it misses its ratio floor *and* its absolute compressed
timing degrades beyond a slack: noise adds tens of microseconds, while a
genuine lost fast path (an accidental full decode) costs on the order of
the recorded *baseline* and trips both prongs.  The slack is
``min(--slack-us, half the recorded baseline)`` per entry, so it can never
grow large enough to swallow a regression to decode-first behaviour.

The candidate must be run at the same ``--size`` as the committed record:
speedups are strongly size-dependent (dictionary filter pushdown is ~4x at
tiny but ~25x at small), so cross-size floors would be meaningless.  A size
mismatch is therefore an error.

    PYTHONPATH=src python benchmarks/bench_colstore_ops.py --size small --output /tmp/smoke.json
    python benchmarks/check_bench_regression.py --candidate /tmp/smoke.json

Exit status 0 when every gated entry holds its floor, 1 on any regression
(or on a gated entry missing from the candidate).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_REFERENCE = Path(__file__).resolve().parents[1] / "BENCH_colstore.json"


def _entries(record: dict) -> dict[tuple[str, str], dict]:
    return {
        (entry["op"], entry["encoding"]): entry
        for entry in record["results"]
        if entry.get("speedup") is not None
    }


def check(reference: dict, candidate: dict, fraction: float,
          min_reference: float, slack_us: float) -> list[str]:
    """Return a list of regression messages (empty = gate passes)."""
    if reference.get("size") != candidate.get("size"):
        return [
            f"size mismatch: reference recorded at {reference.get('size')!r}, "
            f"candidate ran at {candidate.get('size')!r} — speedup floors only "
            "hold within one size"
        ]
    reference_entries = _entries(reference)
    candidate_entries = _entries(candidate)
    failures: list[str] = []
    for key in sorted(reference_entries):
        op, encoding = key
        recorded = reference_entries[key]["speedup"]
        recorded_compressed = reference_entries[key]["compressed_s"]
        # An entry is gated when its recorded speedup clears the reference
        # threshold, or when the bench marked it always-gated ("gated": true
        # — ops whose existence is the point, e.g. the fused join → pivot
        # plan staying ahead of materialise-then-plan).
        gated = recorded >= min_reference or bool(reference_entries[key].get("gated"))
        floor = max(1.0, fraction * recorded)
        label = f"{op:10s} {encoding:12s}"
        entry = candidate_entries.get(key)
        if entry is None:
            if gated:
                failures.append(f"{label} missing from candidate (recorded {recorded:.2f}x)")
            continue
        actual = entry["speedup"]
        # Second prong: absolute compressed-path degradation beyond jitter.
        # Capped at half the recorded baseline so losing a microsecond-scale
        # fast path (compressed_s rising to ~baseline_s) always trips it.
        slack_s = min(slack_us * 1e-6, 0.5 * reference_entries[key]["baseline_s"])
        degraded_s = entry["compressed_s"] - recorded_compressed
        status = "ok"
        if gated and actual < floor and degraded_s > slack_s:
            status = "REGRESSION"
            failures.append(
                f"{label} speedup {actual:.2f}x below floor {floor:.2f}x "
                f"({fraction:.0%} of recorded {recorded:.2f}x) and compressed "
                f"path {degraded_s*1e6:.0f}us slower than recorded "
                f"(slack {slack_s*1e6:.0f}us)"
            )
        print(
            f"  {label} recorded {recorded:7.2f}x  candidate {actual:7.2f}x  "
            f"floor {floor if gated else 0:7.2f}x  "
            f"{status if gated else 'not gated'}"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reference", type=Path, default=DEFAULT_REFERENCE,
                        help="committed trajectory JSON (default: repo BENCH_colstore.json)")
    parser.add_argument("--candidate", type=Path, required=True,
                        help="freshly produced bench JSON to gate")
    parser.add_argument("--fraction", type=float, default=0.5,
                        help="minimum retained share of each recorded speedup")
    parser.add_argument("--min-reference", type=float, default=3.0,
                        help="gate only entries whose recorded speedup reaches this")
    parser.add_argument("--slack-us", type=float, default=50.0,
                        help="absolute compressed-path degradation (microseconds) "
                             "tolerated before a missed ratio floor counts")
    args = parser.parse_args(argv)
    if not 0 < args.fraction <= 1:
        parser.error("--fraction must be in (0, 1]")

    reference = json.loads(args.reference.read_text())
    candidate = json.loads(args.candidate.read_text())
    print(
        f"perf gate: {args.candidate} vs {args.reference} "
        f"(fraction {args.fraction}, min reference {args.min_reference}x, "
        f"slack {args.slack_us:.0f}us)"
    )
    failures = check(reference, candidate, args.fraction, args.min_reference,
                     args.slack_us)
    if failures:
        print(f"\nFAIL: {len(failures)} perf regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nOK: all gated speedups hold their floors")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
