"""Shared fixtures and result collection for the benchmark harness.

Every benchmark module regenerates one figure or table from the paper.  The
harness runs each (engine, query, size/nodes) cell once through the
:class:`~repro.core.runner.BenchmarkRunner` (pytest-benchmark's pedantic
mode with a single round — the interesting numbers are the benchmark's own
phase timings, which are attached as ``extra_info`` and printed as the
figure's series at the end of each module).

Scaling note: the default size grid is ``tiny``/``small`` (laptop seconds);
set ``GENBASE_BENCH_SIZES=tiny,small,medium`` (or any preset list) and
``GENBASE_BENCH_TIMEOUT`` to widen the sweep toward the paper's shape.
"""

from __future__ import annotations

import os

import pytest

from repro.core import BenchmarkRunner, ResultTable
from repro.core.engines import make_engine
from repro.datagen import GenBaseDataset


def bench_sizes() -> list[str]:
    """Dataset sizes the harness sweeps (environment-overridable)."""
    raw = os.environ.get("GENBASE_BENCH_SIZES", "tiny,small")
    return [name.strip() for name in raw.split(",") if name.strip()]


def bench_timeout() -> float:
    """Per-run timeout in seconds (the paper's 2-hour cutoff, scaled)."""
    return float(os.environ.get("GENBASE_BENCH_TIMEOUT", "20"))


def bench_node_counts() -> list[int]:
    """Node counts for the multi-node figures."""
    raw = os.environ.get("GENBASE_BENCH_NODES", "1,2,4")
    return [int(value) for value in raw.split(",") if value.strip()]


def multi_node_size() -> str:
    """The dataset size used by the multi-node figures (paper: the large set)."""
    return os.environ.get("GENBASE_BENCH_MULTINODE_SIZE", bench_sizes()[-1])


@pytest.fixture(scope="session")
def datasets() -> dict[str, GenBaseDataset]:
    """Datasets for every size in the sweep, generated once per session."""
    return {name: GenBaseDataset.generate(name, seed=42) for name in set(bench_sizes() + [multi_node_size()])}


@pytest.fixture(scope="session")
def runner() -> BenchmarkRunner:
    return BenchmarkRunner(timeout_seconds=bench_timeout())


@pytest.fixture(scope="session")
def engine_cache():
    """Cache of loaded single-node engines keyed by (engine name, size)."""
    cache: dict[tuple[str, str], object] = {}

    def get(name: str, dataset: GenBaseDataset, **options):
        key = (name, dataset.spec.name, tuple(sorted(options.items())))
        if key not in cache:
            engine = make_engine(name, **options)
            engine.load(dataset)
            cache[key] = engine
        return cache[key]

    return get


@pytest.fixture(scope="module")
def collected_results():
    """A per-module result table the module's report hook prints."""
    return ResultTable()


def record(benchmark, result, collected: ResultTable) -> None:
    """Attach a QueryResult's numbers to the pytest-benchmark entry and collect it."""
    collected.add(result)
    benchmark.extra_info.update(
        {
            "engine": result.engine,
            "query": result.query,
            "size": result.dataset_size,
            "n_nodes": result.n_nodes,
            "status": result.status.value,
            "data_management_s": round(result.data_management_seconds, 4),
            "analytics_s": round(result.analytics_seconds, 4),
            "total_s": round(result.total_seconds, 4),
        }
    )
