"""Table 1: analytics speedup of the coprocessor-based system vs the Xeon system.

Regenerates the paper's Table 1 — the per-query *analytics-phase* speedup of
SciDB + coprocessor over plain SciDB on 1, 2 and 4 nodes of the largest
swept dataset.  The expected shape: the dense kernels (covariance, SVD)
speed up the most, statistics moderately, biclustering barely at all, and
all speedups shrink as node count grows (less data per node).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_node_counts, multi_node_size, record
from repro.core import ResultTable
from repro.core.results import render_speedup_table, speedup_table

TABLE1_QUERIES = ("covariance", "svd", "statistics", "biclustering")
TABLE1_ENGINES = ("scidb-cluster", "scidb-phi-cluster")


@pytest.mark.parametrize("n_nodes", bench_node_counts())
@pytest.mark.parametrize("engine_name", TABLE1_ENGINES)
@pytest.mark.parametrize("query", TABLE1_QUERIES)
def test_table1_cell(benchmark, query, engine_name, n_nodes, datasets, runner,
                     engine_cache, collected_results):
    dataset = datasets[multi_node_size()]
    engine = engine_cache(engine_name, dataset, n_nodes=n_nodes)

    def run_once():
        return runner.run(query, engine, dataset)

    result = benchmark.pedantic(run_once, rounds=1, iterations=1)
    result.n_nodes = n_nodes
    record(benchmark, result, collected_results)


def test_table1_report(benchmark, collected_results, capsys):
    """Print the Table 1 analytics speedups."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    baseline = ResultTable([r for r in collected_results if r.engine == "scidb-cluster"])
    accelerated = ResultTable([r for r in collected_results if r.engine == "scidb-phi-cluster"])
    speedups = speedup_table(baseline, accelerated, queries=TABLE1_QUERIES)
    with capsys.disabled():
        print(f"\n=== Table 1: analytics speedup of the coprocessor system "
              f"({multi_node_size()} dataset) ===")
        print(render_speedup_table(speedups))
        totals = speedup_table(baseline, accelerated, queries=TABLE1_QUERIES, phase="total")
        print("\n(total-time speedups)")
        print(render_speedup_table(totals))
